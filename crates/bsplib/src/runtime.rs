//! The BSPlib runtime: SPMD execution, background communication and the
//! payload-carrying synchronization barrier (§6.2–6.5).
//!
//! Each superstep runs in two phases. First every process executes its
//! program code against a [`BspCtx`], which advances its virtual clock and
//! commits communication operations with their issue times. Then the
//! runtime resolves the superstep against the simulated network:
//!
//! 1. every operation's out-of-band header (and any put/send payload)
//!    transfers in the background from its issue time;
//! 2. get replies are issued by the data owner's communication thread as
//!    soon as the request header is processed;
//! 3. all processes enter the dissemination barrier, which carries the
//!    message-count map as payload (§6.4–6.5) so each knows how many
//!    inbound transfers remain;
//! 4. a process completes the sync when the barrier is done, all its
//!    inbound data landed *and* its own outbound transfers have released
//!    the sending CPU — communication committed early that finished
//!    during computation costs nothing extra, which is exactly the overlap
//!    the Fig. 1.2 processing model exposes; a transfer committed right
//!    before the sync still charges its sender-side `o_send` tail.
//!
//! Memory effects then apply in BSPlib order: gets read the pre-put state,
//! puts land (deterministically ordered), sends appear in next-superstep
//! queues, registrations commit.

use crate::ctx::BspCtx;
use crate::mem::{BsmpMsg, ProcMem};
use crate::ops::{CommOp, StepOutcome, HEADER_BYTES};
use hpm_barriers::patterns::dissemination;
use hpm_core::predictor::PayloadSchedule;
use hpm_kernels::rate::ProcessorModel;
use hpm_simnet::barrier::{BarrierSim, SimScratch};
use hpm_simnet::exchange::{
    exchange_jitter_draws, resolve_exchange_into, ExchangeMsg, ExchangeResult, ExchangeScratch,
};
use hpm_simnet::net::NetState;
use hpm_simnet::params::PlatformParams;
use hpm_stats::fault::FaultModel;
use hpm_stats::rng::{derive_rng, JitterBuf};
use hpm_topology::Placement;

/// Stream label of the payload-carrying sync's jitter tables; `rep` is
/// the superstep index.
const SYNC_JITTER_LABEL: u64 = 0x5253_594E; // b"RSYN"

/// Stream label of the background-transfer resolutions; `rep` is
/// `2·superstep` for the header/payload pass and `2·superstep + 1` for
/// the get replies.
const EXCHANGE_JITTER_LABEL: u64 = 0x5245_5843; // b"REXC"

/// An SPMD program: one instance per process; each `superstep` call is the
/// code between two `bsp_sync`s.
pub trait BspProgram {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome;
}

/// Which barrier pattern the payload-carrying sync executes (§6.4).
///
/// The thesis' BSPlib sync is a dissemination barrier, but Ch. 5/7 study
/// linear and tree shapes on the same platforms; exposing the choice here
/// lets the runtime replay those comparisons end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPattern {
    /// The §6.4 default: dissemination, carrying the exact §6.5
    /// message-count map schedule.
    #[default]
    Dissemination,
    /// Centralized gather to a root followed by its serial release.
    Linear { root: usize },
    /// Binary-tree gather/release.
    BinaryTree,
}

impl SyncPattern {
    /// Builds the pattern and its count-map payload schedule for `p`
    /// processes. Non-dissemination shapes carry one `4·p`-byte counter
    /// row per signal — an approximation of the aggregated map the exact
    /// §6.5 schedule spells out for dissemination.
    fn build(&self, p: usize) -> (Option<hpm_core::pattern::BarrierPattern>, PayloadSchedule) {
        use hpm_barriers::patterns::{binary_tree, linear};
        use hpm_core::pattern::CommPattern;
        if p < 2 {
            return (None, PayloadSchedule::none());
        }
        match *self {
            SyncPattern::Dissemination => (
                Some(dissemination(p)),
                PayloadSchedule::dissemination_count_map(p),
            ),
            SyncPattern::Linear { root } => {
                let pat = linear(p, root);
                let payload = PayloadSchedule::uniform(pat.stages(), 4 * p as u64);
                (Some(pat), payload)
            }
            SyncPattern::BinaryTree => {
                let pat = binary_tree(p);
                let payload = PayloadSchedule::uniform(pat.stages(), 4 * p as u64);
                (Some(pat), payload)
            }
        }
    }
}

/// What the runtime does when a fault-injected sync fails on some
/// processes (ULFM-style error handling for the simulated machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Abort the run with [`BspError::SyncFailed`] — the pre-recovery
    /// behavior, and the default.
    #[default]
    FailFast,
    /// Shrink the process set to the sync's survivors, remap their pids
    /// to `0..n_survivors` (rank order preserved), rebuild the sync for
    /// the smaller machine, and resume the superstep loop from the
    /// post-consensus instant. What happened is surfaced on
    /// [`BspRunResult::recoveries`] instead of an error.
    ShrinkAndContinue,
}

/// One shrink event on a [`BspRunResult`]: which sync failed, who was
/// evicted, and what the survivors paid to agree on it. Pids are in the
/// numbering that was current *at that superstep* (earlier shrinks have
/// already renumbered).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Superstep whose sync failed.
    pub superstep: usize,
    /// Processes evicted (crashed or timed out), in rank order.
    pub failed: Vec<usize>,
    /// Processes that continue, in rank order; survivor `survivors[i]`
    /// becomes pid `i` from the next superstep on.
    pub survivors: Vec<usize>,
    /// When the survivors had detected the failure: last survivor exit
    /// from the failed sync plus one retry-timeout budget.
    pub detection_time: f64,
    /// Modeled agreement-round cost the survivors paid on top.
    pub consensus_cost: f64,
    /// Process count after the shrink.
    pub nprocs_after: usize,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct BspConfig {
    pub params: PlatformParams,
    pub placement: Placement,
    pub proc_model: ProcessorModel,
    pub seed: u64,
    /// Runaway guard: the run errors out beyond this many supersteps.
    pub max_supersteps: usize,
    /// Barrier shape the sync executes; dissemination unless overridden.
    pub sync: SyncPattern,
    /// Fault model injected into every sync; [`FaultModel::NONE`] (the
    /// default) keeps the run bit-identical to the fault-free runtime.
    pub fault: FaultModel,
    /// What a failed sync does to the run; [`RecoveryPolicy::FailFast`]
    /// (the default) preserves the pre-recovery abort behavior.
    pub recovery: RecoveryPolicy,
}

impl BspConfig {
    /// Standard configuration for a placement on a platform.
    pub fn new(
        params: PlatformParams,
        placement: Placement,
        proc_model: ProcessorModel,
        seed: u64,
    ) -> BspConfig {
        BspConfig {
            params,
            placement,
            proc_model,
            seed,
            max_supersteps: 100_000,
            sync: SyncPattern::default(),
            fault: FaultModel::NONE,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BspError {
    /// `bsp_abort` was called.
    Abort {
        pid: usize,
        superstep: usize,
        msg: String,
    },
    /// Some processes halted while others continued — `bsp_end` must be
    /// collective.
    MixedHalt { superstep: usize },
    /// The `max_supersteps` guard tripped.
    SuperstepLimit,
    /// The configured [`FaultModel`] failed [`FaultModel::checked`]; the
    /// message names the offending knob. Returned before the first
    /// superstep, so a bad user-supplied model cannot silently misbehave
    /// mid-run.
    InvalidFaultModel(String),
    /// A fault-injected sync could not complete on every process: some
    /// crashed or timed out waiting for signals that never arrived. The
    /// run stops at that superstep; `survivors` lists the processes that
    /// still completed the sync cleanly.
    SyncFailed {
        superstep: usize,
        /// Processes that crashed or timed out, in rank order.
        failed: Vec<usize>,
        /// Processes that completed the sync, in rank order.
        survivors: Vec<usize>,
    },
}

impl std::fmt::Display for BspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BspError::Abort {
                pid,
                superstep,
                msg,
            } => {
                write!(f, "bsp_abort from pid {pid} in superstep {superstep}: {msg}")
            }
            BspError::MixedHalt { superstep } => write!(
                f,
                "superstep {superstep}: some processes halted while others continued (bsp_end must be collective)"
            ),
            BspError::SuperstepLimit => write!(f, "superstep limit exceeded"),
            BspError::InvalidFaultModel(msg) => write!(f, "invalid fault model: {msg}"),
            BspError::SyncFailed {
                superstep,
                failed,
                survivors,
            } => write!(
                f,
                "superstep {superstep}: sync failed on {} of {} processes (failed ranks: {failed:?})",
                failed.len(),
                failed.len() + survivors.len()
            ),
        }
    }
}

impl std::error::Error for BspError {}

/// Timing trace of one superstep (absolute virtual times).
#[derive(Debug, Clone)]
pub struct SuperstepTrace {
    /// When each process finished its program code (sync entry).
    pub compute_end: Vec<f64>,
    /// When each process' last *outbound* transfer (one-sided header,
    /// put/send payload or get reply it served) released its CPU; equals
    /// `compute_end` for processes that sourced nothing.
    pub send_complete: Vec<f64>,
    /// When each process absorbed its last *inbound* transfer; equals
    /// `compute_end` for processes that received nothing.
    pub recv_complete: Vec<f64>,
    /// When each process left the dissemination protocol itself (equals
    /// `compute_end` when `p == 1` and no barrier runs). Useful for
    /// diagnosing which term binds `completion`.
    pub sync_exit: Vec<f64>,
    /// When each process completed the sync (next superstep entry). Never
    /// earlier than `send_complete` or `recv_complete`: a process may not
    /// leave the sync while its own issue tails or inbound data are still
    /// in flight.
    pub completion: Vec<f64>,
    /// Total payload bytes committed during the superstep.
    pub payload_bytes: u64,
    /// Number of one-sided/BSMP operations committed.
    pub ops: usize,
}

impl SuperstepTrace {
    /// Wall time of this superstep: latest completion minus earliest entry
    /// into it (the previous step's latest completion is the caller's
    /// reference; within a trace we report the collective span).
    pub fn span(&self, prev_max_completion: f64) -> f64 {
        let end = self
            .completion
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        end - prev_max_completion
    }
}

/// The outcome of a run: final program states and the timing record.
#[derive(Debug)]
pub struct BspRunResult<P> {
    /// Per-process program instances after the run.
    pub programs: Vec<P>,
    /// Total virtual time (latest completion of the final sync).
    pub total_time: f64,
    /// Per-superstep traces. A trace recorded before a shrink spans the
    /// process count that was current then.
    pub supersteps: Vec<SuperstepTrace>,
    /// Shrink events under [`RecoveryPolicy::ShrinkAndContinue`], in
    /// superstep order; empty on a clean run and always empty under
    /// [`RecoveryPolicy::FailFast`].
    pub recoveries: Vec<RecoveryEvent>,
}

impl<P> BspRunResult<P> {
    /// Number of supersteps executed.
    pub fn superstep_count(&self) -> usize {
        self.supersteps.len()
    }

    /// Wall time of superstep `k`.
    pub fn superstep_time(&self, k: usize) -> f64 {
        let prev = if k == 0 {
            0.0
        } else {
            self.supersteps[k - 1]
                .completion
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        self.supersteps[k].span(prev)
    }
}

/// Runs an SPMD program built by `make(pid)` on the configured platform.
///
/// Returns [`BspError::InvalidFaultModel`] before the first superstep
/// when `cfg.fault` fails [`FaultModel::checked`]. Under
/// [`RecoveryPolicy::ShrinkAndContinue`] a failed sync evicts the
/// failed processes and the loop resumes over the renumbered survivors
/// (the halting superstep is re-executed by the survivors if the final
/// sync itself failed); each shrink is recorded on
/// [`BspRunResult::recoveries`].
pub fn run_spmd<P: BspProgram>(
    cfg: &BspConfig,
    mut make: impl FnMut(usize) -> P,
) -> Result<BspRunResult<P>, BspError> {
    if let Err(e) = cfg.fault.checked() {
        return Err(BspError::InvalidFaultModel(e.to_string()));
    }
    let mut p = cfg.placement.nprocs();
    let mut programs: Vec<P> = (0..p).map(&mut make).collect();
    let mut mems: Vec<ProcMem> = (0..p).map(|_| ProcMem::default()).collect();
    let mut clocks = vec![0.0f64; p];
    let mut rng = derive_rng(cfg.seed, 0xB5F);
    // The sync pattern is compiled once into CSR form and every
    // superstep's barrier runs over reused scratch. A shrink rebuilds
    // everything sized or shaped by the process count: the placement,
    // the network, the compiled sync and its scratch.
    let build_sync = |n: usize| {
        use hpm_core::pattern::CommPattern;
        let (pat, payload) = cfg.sync.build(n);
        (pat.as_ref().map(|pat| pat.plan()), payload)
    };
    let mut placement = cfg.placement.clone();
    let mut net = NetState::new(&placement);
    let (mut compiled_sync, mut payload) = build_sync(p);
    let mut sync_scratch = SimScratch::new(&placement);
    let mut ex_scratch = ExchangeScratch::default();
    // Background transfers run on the batched jitter engine: one table
    // per resolution pass, filled to the message list's exact draw count
    // from a stream keyed by the superstep. (Program compute jitter
    // stays on the scalar path through `rng` — the draws arrive one at a
    // time as the program advances its clock.)
    let mut ex_jitter = JitterBuf::new();
    let mut r1 = ExchangeResult::default();
    let mut r2 = ExchangeResult::default();
    let mut supersteps = Vec::new();
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();

    for step in 0..cfg.max_supersteps {
        let sim = BarrierSim::new(&cfg.params, &placement);
        // Phase 1: run program code, collect ops.
        let mut all_ops: Vec<Vec<CommOp>> = Vec::with_capacity(p);
        let mut compute_end = vec![0.0f64; p];
        let mut halts = 0usize;
        for pid in 0..p {
            let mut ctx = BspCtx::new(
                pid,
                p,
                clocks[pid],
                &cfg.proc_model,
                cfg.params.jitter,
                &mut rng,
                &mut mems[pid],
            );
            let outcome = programs[pid].superstep(&mut ctx);
            let (now, ops, abort) = ctx.finish();
            if let Some(msg) = abort {
                return Err(BspError::Abort {
                    pid,
                    superstep: step,
                    msg,
                });
            }
            compute_end[pid] = now;
            all_ops.push(ops);
            if outcome == StepOutcome::Halt {
                halts += 1;
            }
        }
        if halts > 0 && halts < p {
            return Err(BspError::MixedHalt { superstep: step });
        }

        // Phase 2: resolve communication.
        let mut headers: Vec<ExchangeMsg> = Vec::new();
        let mut header_owner_of_get: Vec<(usize, usize)> = Vec::new(); // (msg idx, op idx)
        let mut flat_ops: Vec<(usize, &CommOp)> = Vec::new();
        let mut payload_bytes = 0u64;
        for (pid, ops) in all_ops.iter().enumerate() {
            for op in ops {
                flat_ops.push((pid, op));
            }
        }
        for (k, &(pid, op)) in flat_ops.iter().enumerate() {
            headers.push(ExchangeMsg {
                src: pid,
                dst: op.target(),
                bytes: HEADER_BYTES,
                issue: op.issue(),
            });
            match op {
                CommOp::Put { data, .. } => {
                    payload_bytes += data.len() as u64;
                    headers.push(ExchangeMsg {
                        src: pid,
                        dst: op.target(),
                        bytes: data.len() as u64,
                        issue: op.issue(),
                    });
                }
                CommOp::Send { tag, payload, .. } => {
                    let b = (tag.len() + payload.len()) as u64;
                    payload_bytes += b;
                    headers.push(ExchangeMsg {
                        src: pid,
                        dst: op.target(),
                        bytes: b,
                        issue: op.issue(),
                    });
                }
                CommOp::Get { len, .. } => {
                    payload_bytes += *len as u64;
                    header_owner_of_get.push((headers.len() - 1, k));
                }
            }
        }
        ex_jitter.fill(
            cfg.params.jitter.sigma,
            cfg.seed,
            EXCHANGE_JITTER_LABEL,
            2 * step as u64,
            exchange_jitter_draws(&headers),
        );
        resolve_exchange_into(
            &cfg.params,
            &cfg.placement,
            &headers,
            &mut net,
            &mut ex_jitter,
            &mut ex_scratch,
            &mut r1,
        );
        // Get replies: issued by the owner once the request is processed.
        let replies: Vec<ExchangeMsg> = header_owner_of_get
            .iter()
            .map(|&(msg_idx, op_idx)| {
                let (requester, op) = flat_ops[op_idx];
                ExchangeMsg {
                    src: op.target(),
                    dst: requester,
                    bytes: op.payload_bytes(),
                    issue: r1.processed[msg_idx],
                }
            })
            .collect();
        ex_jitter.fill(
            cfg.params.jitter.sigma,
            cfg.seed,
            EXCHANGE_JITTER_LABEL,
            2 * step as u64 + 1,
            exchange_jitter_draws(&replies),
        );
        resolve_exchange_into(
            &cfg.params,
            &cfg.placement,
            &replies,
            &mut net,
            &mut ex_jitter,
            &mut ex_scratch,
            &mut r2,
        );

        // Phase 3: synchronize. Under a fault model the sync runs on the
        // faulty executor (same stream label and rep, so a zero-fault
        // model reproduces the healthy path bit-for-bit). A sync that
        // not every process completes aborts the run with the survivor
        // set under `FailFast`, or triggers a shrink below under
        // `ShrinkAndContinue`.
        let mut sync_failure: Option<hpm_simnet::faults::FaultReport> = None;
        let barrier_exit = match &compiled_sync {
            Some(plan) if !cfg.fault.is_none() => {
                let report = sim.run_once_faulty(
                    plan,
                    &payload,
                    &cfg.fault,
                    &compute_end,
                    &mut net,
                    cfg.seed,
                    SYNC_JITTER_LABEL,
                    step as u64,
                    &mut sync_scratch,
                );
                if !report.all_completed() {
                    if cfg.recovery == RecoveryPolicy::FailFast {
                        return Err(BspError::SyncFailed {
                            superstep: step,
                            failed: report.failed(),
                            survivors: report.survivors(),
                        });
                    }
                    sync_failure = Some(report);
                }
                sync_scratch.exits().to_vec()
            }
            Some(plan) => {
                sim.run_once_batched(
                    plan,
                    &payload,
                    &compute_end,
                    &mut net,
                    cfg.seed,
                    SYNC_JITTER_LABEL,
                    step as u64,
                    &mut sync_scratch,
                );
                sync_scratch.exits().to_vec()
            }
            None => compute_end.clone(),
        };
        // A process completes the sync when the barrier is done, all its
        // inbound data landed, AND its own outbound transfers' sender-side
        // cost has elapsed — a sender that issued an hp-put just before
        // the sync still owns its CPU for the `o_send` tail (and a get
        // owner for the reply it serves), exactly as the MPI stencil's
        // blocking stages account it.
        let send_complete: Vec<f64> = (0..p)
            .map(|i| compute_end[i].max(r1.last_out[i]).max(r2.last_out[i]))
            .collect();
        let recv_complete: Vec<f64> = (0..p)
            .map(|i| compute_end[i].max(r1.last_in[i]).max(r2.last_in[i]))
            .collect();
        let completion: Vec<f64> = (0..p)
            .map(|i| barrier_exit[i].max(recv_complete[i]).max(send_complete[i]))
            .collect();

        // Phase 4: memory effects in BSPlib order.
        // After a failed sync under ShrinkAndContinue, only effects
        // whose source and destination both survive commit — data to or
        // from an evicted process died with it.
        let survives: Vec<bool> = match &sync_failure {
            Some(report) => report
                .outcomes
                .iter()
                .map(|o| matches!(o, hpm_simnet::faults::RankOutcome::Completed(_)))
                .collect(),
            None => vec![true; p],
        };
        // Gets read the state at the end of computation, before puts.
        let mut get_results: Vec<(usize, &CommOp, Vec<u8>)> = Vec::new();
        for &(pid, op) in &flat_ops {
            if let CommOp::Get {
                src,
                src_reg,
                src_offset,
                len,
                ..
            } = op
            {
                if !(survives[pid] && survives[*src]) {
                    continue;
                }
                let data = mems[*src].read(*src_reg)[*src_offset..*src_offset + *len].to_vec();
                get_results.push((pid, op, data));
            }
        }
        for &(pid, op) in &flat_ops {
            if let CommOp::Put {
                dst,
                reg,
                offset,
                data,
                ..
            } = op
            {
                if !(survives[pid] && survives[*dst]) {
                    continue;
                }
                mems[*dst].write(*reg)[*offset..*offset + data.len()].copy_from_slice(data);
            }
        }
        for (pid, op, data) in get_results {
            if let CommOp::Get {
                dst_reg,
                dst_offset,
                len,
                ..
            } = op
            {
                mems[pid].write(*dst_reg)[*dst_offset..*dst_offset + *len].copy_from_slice(&data);
            }
        }
        for &(pid, op) in &flat_ops {
            if let CommOp::Send {
                dst, tag, payload, ..
            } = op
            {
                if !(survives[pid] && survives[*dst]) {
                    continue;
                }
                mems[*dst].arriving.push(BsmpMsg {
                    tag: tag.clone(),
                    payload: payload.clone(),
                });
            }
        }
        for mem in mems.iter_mut() {
            mem.commit_sync();
        }

        supersteps.push(SuperstepTrace {
            compute_end,
            send_complete,
            recv_complete,
            sync_exit: barrier_exit,
            completion: completion.clone(),
            payload_bytes,
            ops: flat_ops.len(),
        });
        clocks = completion;

        if let Some(report) = sync_failure {
            // ShrinkAndContinue: evict the failed processes, renumber
            // the survivors to 0..n in rank order, rebuild everything
            // shaped by the process count, and resume from the
            // post-detection/consensus instant.
            let survivor_ranks = report.survivors();
            let failed = report.failed();
            if survivor_ranks.is_empty() {
                return Err(BspError::SyncFailed {
                    superstep: step,
                    failed,
                    survivors: survivor_ranks,
                });
            }
            let detection_time = report.total() + cfg.fault.timeout;
            let consensus = hpm_simnet::recovery::consensus_cost(&cfg.params, survivor_ranks.len());
            let t0 = detection_time + consensus;
            let mut keep = survives.iter();
            programs.retain(|_| *keep.next().expect("mask spans programs"));
            let mut keep = survives.iter();
            mems.retain(|_| *keep.next().expect("mask spans mems"));
            let mut keep = survives.iter();
            clocks.retain(|_| *keep.next().expect("mask spans clocks"));
            // Survivors resume no earlier than the agreement instant;
            // a transfer tail that outlived it keeps its later clock.
            for c in clocks.iter_mut() {
                *c = c.max(t0);
            }
            p = survivor_ranks.len();
            recoveries.push(RecoveryEvent {
                superstep: step,
                failed,
                survivors: survivor_ranks,
                detection_time,
                consensus_cost: consensus,
                nprocs_after: p,
            });
            placement = Placement::new(placement.shape(), placement.policy(), p);
            net = NetState::new(&placement);
            let (cs, pl) = build_sync(p);
            compiled_sync = cs;
            payload = pl;
            sync_scratch = SimScratch::new(&placement);
            continue;
        }

        if halts == p {
            let total_time = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            return Ok(BspRunResult {
                programs,
                total_time,
                supersteps,
                recoveries,
            });
        }
    }
    Err(BspError::SuperstepLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::RegHandle;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn config(p: usize) -> BspConfig {
        BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            1234,
        )
    }

    /// Ring rotation by put: each process writes its pid into its right
    /// neighbour's buffer, twice, checking values between supersteps.
    #[derive(Debug)]
    struct RotatePut {
        step: usize,
        buf: Option<RegHandle>,
        seen: Vec<u8>,
    }

    impl BspProgram for RotatePut {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            let p = ctx.nprocs();
            match self.step {
                0 => {
                    let h = ctx.alloc(1);
                    ctx.push_reg(h);
                    self.buf = Some(h);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let h = self.buf.expect("allocated");
                    let dst = (ctx.pid() + 1) % p;
                    ctx.put(dst, h, 0, &[ctx.pid() as u8]);
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => {
                    let h = self.buf.expect("allocated");
                    self.seen = ctx.read_buf(h).to_vec();
                    StepOutcome::Halt
                }
            }
        }
    }

    #[test]
    fn put_data_arrives_after_sync() {
        let cfg = config(8);
        let res = run_spmd(&cfg, |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        })
        .expect("run succeeds");
        for (pid, prog) in res.programs.iter().enumerate() {
            let left = ((pid + 8) - 1) % 8;
            assert_eq!(prog.seen, vec![left as u8], "pid {pid}");
        }
        assert_eq!(res.superstep_count(), 3);
        assert!(res.total_time > 0.0);
    }

    /// Get-based neighbour read.
    struct NeighbourGet {
        step: usize,
        src: Option<RegHandle>,
        dst: Option<RegHandle>,
        got: u8,
    }

    impl BspProgram for NeighbourGet {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    let s = ctx.alloc(1);
                    let d = ctx.alloc(1);
                    ctx.write_buf(s)[0] = (ctx.pid() * 10) as u8;
                    ctx.push_reg(s);
                    ctx.push_reg(d);
                    self.src = Some(s);
                    self.dst = Some(d);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let p = ctx.nprocs();
                    let from = (ctx.pid() + 1) % p;
                    ctx.get(
                        from,
                        self.src.expect("reg"),
                        0,
                        self.dst.expect("reg"),
                        0,
                        1,
                    );
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => {
                    self.got = ctx.read_buf(self.dst.expect("reg"))[0];
                    StepOutcome::Halt
                }
            }
        }
    }

    #[test]
    fn get_reads_remote_values() {
        let cfg = config(4);
        let res = run_spmd(&cfg, |_| NeighbourGet {
            step: 0,
            src: None,
            dst: None,
            got: 0,
        })
        .expect("run succeeds");
        for (pid, prog) in res.programs.iter().enumerate() {
            assert_eq!(prog.got, (((pid + 1) % 4) * 10) as u8, "pid {pid}");
        }
    }

    /// BSMP: everyone sends its pid to rank 0 with a 4-byte tag.
    struct SendToZero {
        step: usize,
        received: Vec<u32>,
    }

    impl BspProgram for SendToZero {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    ctx.set_tagsize(4);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let tag = (ctx.pid() as u32).to_le_bytes();
                    ctx.send(0, &tag, &(ctx.pid() as u32 * 7).to_le_bytes());
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => {
                    if ctx.pid() == 0 {
                        while let Some(m) = ctx.move_msg() {
                            self.received
                                .push(u32::from_le_bytes(m.payload.try_into().expect("4B")));
                        }
                    }
                    StepOutcome::Halt
                }
            }
        }
    }

    #[test]
    fn bsmp_queue_delivers_all_messages() {
        let cfg = config(6);
        let res = run_spmd(&cfg, |_| SendToZero {
            step: 0,
            received: Vec::new(),
        })
        .expect("run succeeds");
        let mut got = res.programs[0].received.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 7, 14, 21, 28, 35]);
    }

    /// Overlap witness: a big put issued early, followed by long compute,
    /// should cost (almost) nothing at sync compared to the same put
    /// issued at the end of the compute.
    struct OverlapProbe {
        step: usize,
        early: bool,
        buf: Option<RegHandle>,
    }

    const BIG: usize = 4 << 20;

    impl BspProgram for OverlapProbe {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    let h = ctx.alloc(BIG);
                    ctx.push_reg(h);
                    self.buf = Some(h);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let h = self.buf.expect("reg");
                    let data = vec![1u8; BIG];
                    let dst = (ctx.pid() + 1) % ctx.nprocs();
                    let compute = 0.1; // 100 ms of work
                    if self.early {
                        ctx.hpput(dst, h, 0, &data);
                        ctx.elapse(compute);
                    } else {
                        ctx.elapse(compute);
                        ctx.hpput(dst, h, 0, &data);
                    }
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => StepOutcome::Halt,
            }
        }
    }

    fn overlap_run(early: bool) -> f64 {
        // 16 processes span two nodes, so the ring put crosses the
        // gigabit link where a 4 MiB transfer costs ~35 ms.
        let cfg = config(16);
        let res = run_spmd(&cfg, |_| OverlapProbe {
            step: 0,
            early,
            buf: None,
        })
        .expect("run succeeds");
        res.superstep_time(1)
    }

    #[test]
    fn early_commitment_overlaps_communication() {
        let early = overlap_run(true);
        let late = overlap_run(false);
        // 4 MiB at ~118 MB/s is ~35 ms; early commitment hides it inside
        // the 100 ms of compute, late commitment pays it after.
        assert!(
            late > early + 0.02,
            "late {late} should exceed early {early} by the transfer time"
        );
    }

    /// Abort propagation.
    #[derive(Debug)]
    struct Aborter;
    impl BspProgram for Aborter {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            if ctx.pid() == 2 {
                ctx.abort("deliberate");
            }
            StepOutcome::Halt
        }
    }

    #[test]
    fn abort_surfaces_as_error() {
        let cfg = config(4);
        let err = run_spmd(&cfg, |_| Aborter).expect_err("must abort");
        assert_eq!(
            err,
            BspError::Abort {
                pid: 2,
                superstep: 0,
                msg: "deliberate".into()
            }
        );
    }

    /// Mixed halt detection.
    #[derive(Debug)]
    struct HalfHalt;
    impl BspProgram for HalfHalt {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            if ctx.pid() == 0 {
                StepOutcome::Halt
            } else {
                StepOutcome::Continue
            }
        }
    }

    #[test]
    fn mixed_halt_is_an_error() {
        let cfg = config(3);
        let err = run_spmd(&cfg, |_| HalfHalt).expect_err("must fail");
        assert_eq!(err, BspError::MixedHalt { superstep: 0 });
    }

    /// Infinite program trips the guard.
    #[derive(Debug)]
    struct Forever;
    impl BspProgram for Forever {
        fn superstep(&mut self, _ctx: &mut BspCtx) -> StepOutcome {
            StepOutcome::Continue
        }
    }

    #[test]
    fn superstep_limit_guards_runaways() {
        let mut cfg = config(2);
        cfg.max_supersteps = 10;
        let err = run_spmd(&cfg, |_| Forever).expect_err("must trip");
        assert_eq!(err, BspError::SuperstepLimit);
    }

    #[test]
    fn single_process_runs_without_barrier() {
        let cfg = BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 1),
            xeon_core(),
            9,
        );
        struct One {
            done: bool,
        }
        impl BspProgram for One {
            fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
                ctx.elapse(1e-3);
                self.done = true;
                StepOutcome::Halt
            }
        }
        let res = run_spmd(&cfg, |_| One { done: false }).expect("runs");
        assert!(res.programs[0].done);
        assert!(res.total_time >= 1e-3 * 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let t1 = overlap_run(true);
        let t2 = overlap_run(true);
        assert_eq!(t1, t2);
    }

    /// A platform where the sender-side message overhead of the
    /// cross-socket (same-node) link dominates every other cost, while
    /// same-socket signalling stays cheap. Noiseless, so every timing is
    /// an exact composition of these constants.
    fn send_tail_params() -> PlatformParams {
        use hpm_simnet::params::LinkCost;
        use hpm_stats::rng::JitterModel;
        let link = |o_send: f64, latency: f64| LinkCost {
            o_send,
            o_recv: 1e-8,
            latency,
            inv_bandwidth: 0.0,
        };
        PlatformParams {
            name: "send-tail".into(),
            call_overhead: 1e-8,
            same_socket: link(1e-8, 1e-9),
            same_node: link(1e-3, 2e-9),
            remote: link(1e-8, 3e-9),
            nic_gap: 0.0,
            ack_factor: 0.0,
            unexpected_penalty: 0.0,
            jitter: JitterModel::NONE,
        }
        .validated()
    }

    /// Process 1 computes, then commits one 1-byte hp-put to process 4
    /// right before the sync; everyone else enters the sync immediately.
    struct LateHpPut {
        step: usize,
        buf: Option<RegHandle>,
    }

    impl BspProgram for LateHpPut {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    let h = ctx.alloc(1);
                    ctx.push_reg(h);
                    self.buf = Some(h);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    if ctx.pid() == 1 {
                        ctx.elapse(0.05);
                        let h = self.buf.expect("allocated");
                        ctx.hpput(4, h, 0, &[7]);
                    }
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => StepOutcome::Halt,
            }
        }
    }

    /// Five processes packed on one node: ranks 0–3 share socket 0, rank
    /// 4 sits on socket 1, so the 1→4 hp-put crosses the expensive
    /// cross-socket link while the rooted sync exchanges only cheap
    /// same-socket signals with rank 1.
    fn late_put_run(sync: SyncPattern) -> BspRunResult<LateHpPut> {
        let mut cfg = BspConfig::new(
            send_tail_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::Block, 5),
            xeon_core(),
            7,
        );
        cfg.sync = sync;
        run_spmd(&cfg, |_| LateHpPut { step: 0, buf: None }).expect("run succeeds")
    }

    /// Regression (the PR 3 headline bugfix): a process may not complete
    /// the sync before its own issued transfers' sender-side cost has
    /// elapsed. Pre-fix, `completion` ignored `send_done` entirely, so
    /// process 1 here left the rooted sync (whose signals never route
    /// through the put's receiver) while the hp-put's cross-socket
    /// `o_send` tail was still occupying its CPU.
    #[test]
    fn sync_waits_for_sender_side_tails() {
        let res = late_put_run(SyncPattern::Linear { root: 0 });
        let tr = &res.supersteps[1];
        let o_send_tail = 1e-3;
        // The late-issued hp-put's o_send tail extends past compute end …
        assert!(
            tr.send_complete[1] > tr.compute_end[1] + 0.5 * o_send_tail,
            "send tail {} vs compute end {}",
            tr.send_complete[1],
            tr.compute_end[1]
        );
        // … and past both other completion drivers (barrier exit and
        // inbound data), so only the sender-side accounting can cover it.
        assert!(
            tr.send_complete[1] > tr.sync_exit[1].max(tr.recv_complete[1]) + 0.25 * o_send_tail,
            "scenario must make the send tail the binding term: send {} sync {} recv {}",
            tr.send_complete[1],
            tr.sync_exit[1],
            tr.recv_complete[1]
        );
        // The teeth: completion must wait for the tail. The pre-fix
        // runtime computed completion = max(sync exit, inbound) and fails
        // here by ~o_send.
        assert!(
            tr.completion[1] >= tr.send_complete[1],
            "sync must wait for the sender-side tail: completion {} < send {}",
            tr.completion[1],
            tr.send_complete[1]
        );
    }

    /// The completion invariant over every sync shape, process and
    /// superstep: completion never precedes a process' own send tails,
    /// its inbound data, its barrier exit, or its compute end.
    #[test]
    fn completion_covers_send_and_recv_tails_for_all_sync_shapes() {
        for sync in [
            SyncPattern::Dissemination,
            SyncPattern::Linear { root: 0 },
            SyncPattern::Linear { root: 2 },
            SyncPattern::BinaryTree,
        ] {
            let res = late_put_run(sync);
            assert_eq!(res.superstep_count(), 3);
            for (k, tr) in res.supersteps.iter().enumerate() {
                for i in 0..tr.completion.len() {
                    assert!(
                        tr.completion[i] >= tr.send_complete[i],
                        "{sync:?} step {k} pid {i}: completion {} < send tail {}",
                        tr.completion[i],
                        tr.send_complete[i]
                    );
                    assert!(tr.completion[i] >= tr.recv_complete[i]);
                    assert!(tr.completion[i] >= tr.sync_exit[i]);
                    assert!(tr.completion[i] >= tr.compute_end[i]);
                }
            }
        }
    }

    /// A fault model with a benign drop probability (no crashes, retry
    /// budget far above the loss threshold) completes the run, still
    /// delivers every put, and can only ever push completion later than
    /// the fault-free run (retransmission delay is additive).
    #[test]
    fn faulty_sync_with_benign_drops_still_delivers() {
        use hpm_stats::fault::DropProb;
        let healthy = run_spmd(&config(8), |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        })
        .expect("healthy run succeeds");
        let mut cfg = config(8);
        cfg.fault = FaultModel {
            drop: DropProb::uniform(0.05),
            ..FaultModel::NONE
        };
        let res = run_spmd(&cfg, |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        })
        .expect("faulty run degrades gracefully");
        for (pid, prog) in res.programs.iter().enumerate() {
            let left = ((pid + 8) - 1) % 8;
            assert_eq!(prog.seen, vec![left as u8], "pid {pid}");
        }
        assert!(
            res.total_time >= healthy.total_time,
            "drops may only delay completion: faulty {} vs healthy {}",
            res.total_time,
            healthy.total_time
        );
    }

    /// Crashed processes surface as a structured [`BspError::SyncFailed`]
    /// carrying the superstep and the failed/survivor partition — not as
    /// a hang or a silent wrong answer.
    #[test]
    fn early_crash_fails_sync_with_survivor_set() {
        let mut cfg = config(8);
        cfg.fault = FaultModel {
            crash_count: 2,
            crash_window: 1e-9,
            ..FaultModel::NONE
        };
        let err = run_spmd(&cfg, |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        })
        .expect_err("crashed ranks must fail the sync");
        match err {
            BspError::SyncFailed {
                superstep,
                failed,
                survivors,
            } => {
                assert_eq!(superstep, 0, "the crash window opens at time zero");
                assert!(!failed.is_empty(), "crashed ranks must be reported");
                let mut all: Vec<usize> = failed.iter().chain(&survivors).copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..8).collect::<Vec<_>>(), "partition of ranks");
            }
            other => panic!("expected SyncFailed, got {other:?}"),
        }
    }

    /// A configuration that fails fast on its first lossy sync completes
    /// under `ShrinkAndContinue`: each failed sync evicts the processes
    /// that gave up, the survivors renumber and resume, and the shrink
    /// trail lands on the result. (Transient losses — a retry-less drop
    /// model — rather than crashes, so later syncs over the survivors
    /// can succeed and the run can finish.)
    #[test]
    fn shrink_and_continue_survives_what_failfast_aborts() {
        use hpm_stats::fault::DropProb;
        let mut cfg = config(8);
        cfg.seed = 0;
        cfg.fault = FaultModel {
            drop: DropProb::uniform(0.02),
            max_retries: 0,
            timeout: 2e-5,
            ..FaultModel::NONE
        };
        let make = |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        };
        assert!(matches!(
            run_spmd(&cfg, make).expect_err("fail-fast aborts"),
            BspError::SyncFailed { .. }
        ));
        cfg.recovery = RecoveryPolicy::ShrinkAndContinue;
        let res = run_spmd(&cfg, make).expect("survivors complete the run");
        assert!(!res.recoveries.is_empty(), "shrinks must be recorded");
        let mut nprocs = 8;
        for ev in &res.recoveries {
            assert!(!ev.failed.is_empty() && !ev.survivors.is_empty());
            assert_eq!(ev.failed.len() + ev.survivors.len(), nprocs);
            assert_eq!(ev.nprocs_after, ev.survivors.len());
            assert!(ev.detection_time > 0.0, "detection pays the timeout");
            assert!(
                ev.nprocs_after == 1 || ev.consensus_cost > 0.0,
                "agreement among >1 survivors costs time"
            );
            nprocs = ev.nprocs_after;
        }
        assert_eq!(res.programs.len(), nprocs, "result spans the survivors");
        assert!(res.total_time > res.recoveries[0].detection_time);
    }

    /// With no faults configured, the recovery policy is inert: both
    /// policies produce bitwise identical runs and no recovery events.
    #[test]
    fn zero_fault_policies_are_bitwise_identical() {
        let make = |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        };
        let cfg = config(8);
        let fail_fast = run_spmd(&cfg, make).expect("clean run");
        let mut cfg2 = config(8);
        cfg2.recovery = RecoveryPolicy::ShrinkAndContinue;
        let shrink = run_spmd(&cfg2, make).expect("clean run");
        assert_eq!(fail_fast.total_time.to_bits(), shrink.total_time.to_bits());
        assert!(fail_fast.recoveries.is_empty() && shrink.recoveries.is_empty());
    }

    /// A bad fault model is rejected at entry with a structured error
    /// naming the knob, before any superstep runs.
    #[test]
    fn invalid_fault_model_is_rejected_at_entry() {
        let mut cfg = config(4);
        cfg.fault.backoff = 0.5;
        let err = run_spmd(&cfg, |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        })
        .expect_err("bad model must be rejected");
        match err {
            BspError::InvalidFaultModel(msg) => {
                assert!(msg.contains("backoff"), "names the knob: {msg}")
            }
            other => panic!("expected InvalidFaultModel, got {other:?}"),
        }
    }

    /// `BspError` is a real error type: `Display` carries the rank and
    /// superstep context, and it boxes into `dyn Error` so callers can
    /// `?` it.
    #[test]
    fn bsp_error_displays_and_boxes() {
        let err = BspError::SyncFailed {
            superstep: 3,
            failed: vec![1, 4],
            survivors: vec![0, 2, 3],
        };
        let msg = err.to_string();
        assert!(msg.contains("superstep 3"), "{msg}");
        assert!(msg.contains("2 of 5"), "{msg}");
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("failed ranks: [1, 4]"));
        assert_eq!(
            BspError::SuperstepLimit.to_string(),
            "superstep limit exceeded"
        );
        let abort = BspError::Abort {
            pid: 2,
            superstep: 0,
            msg: "deliberate".into(),
        };
        assert_eq!(
            abort.to_string(),
            "bsp_abort from pid 2 in superstep 0: deliberate"
        );
    }

    /// All sync shapes deliver the data and synchronize correctly: the
    /// ring-rotation program gives identical results under each.
    #[test]
    fn alternative_sync_patterns_deliver_puts() {
        for sync in [
            SyncPattern::Linear { root: 0 },
            SyncPattern::Linear { root: 3 },
            SyncPattern::BinaryTree,
        ] {
            let mut cfg = config(8);
            cfg.sync = sync;
            let res = run_spmd(&cfg, |_| RotatePut {
                step: 0,
                buf: None,
                seen: Vec::new(),
            })
            .expect("run succeeds");
            for (pid, prog) in res.programs.iter().enumerate() {
                let left = ((pid + 8) - 1) % 8;
                assert_eq!(prog.seen, vec![left as u8], "{sync:?} pid {pid}");
            }
        }
    }
}
