//! Per-process memory and registration state.
//!
//! BSPlib's one-sided operations name remote memory by *registration*:
//! §6.2 implements `push_reg`/`pop_reg` with two queues of pointers and
//! indices that are committed to a hash table at synchronization time, so
//! that programs refer to a buffer by a consistent reference regardless of
//! per-process layout. The same structure exists here: registrations are
//! queued during a superstep and only become usable after the next sync.

use std::collections::{HashMap, VecDeque};

/// A handle naming a buffer consistently across processes (the analogue of
/// the registered pointer value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegHandle(pub usize);

/// A delivered BSMP message: fixed-size tag plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsmpMsg {
    pub tag: Vec<u8>,
    pub payload: Vec<u8>,
}

/// One process' memory: buffers, registration table and message queue.
#[derive(Debug, Default)]
pub struct ProcMem {
    bufs: Vec<Vec<u8>>,
    registered: HashMap<RegHandle, ()>,
    push_queue: Vec<RegHandle>,
    pop_queue: Vec<RegHandle>,
    /// Current tag size in bytes; changes take effect next superstep.
    pub tagsize: usize,
    pending_tagsize: Option<usize>,
    /// Messages available for `move` in the current superstep.
    pub inbox: VecDeque<BsmpMsg>,
    /// Messages arriving during this superstep, delivered at sync.
    pub arriving: Vec<BsmpMsg>,
}

impl ProcMem {
    /// Allocates a zero-filled buffer, returning its handle. SPMD programs
    /// allocate in the same order on every process, so handles agree.
    pub fn alloc(&mut self, bytes: usize) -> RegHandle {
        self.bufs.push(vec![0u8; bytes]);
        RegHandle(self.bufs.len() - 1)
    }

    /// Buffer length.
    pub fn len(&self, h: RegHandle) -> usize {
        self.bufs[h.0].len()
    }

    /// True when no buffer exists yet.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Read-only view of a buffer.
    pub fn read(&self, h: RegHandle) -> &[u8] {
        &self.bufs[h.0]
    }

    /// Mutable view of a buffer.
    pub fn write(&mut self, h: RegHandle) -> &mut [u8] {
        &mut self.bufs[h.0]
    }

    /// Queues a registration (effective after the next sync).
    pub fn queue_push_reg(&mut self, h: RegHandle) {
        assert!(h.0 < self.bufs.len(), "push_reg of unknown buffer");
        self.push_queue.push(h);
    }

    /// Queues a deregistration (effective after the next sync).
    pub fn queue_pop_reg(&mut self, h: RegHandle) {
        self.pop_queue.push(h);
    }

    /// Queues a tag-size change (collective; effective next superstep).
    pub fn queue_tagsize(&mut self, bytes: usize) {
        self.pending_tagsize = Some(bytes);
    }

    /// True when `h` is usable as a remote target this superstep.
    pub fn is_registered(&self, h: RegHandle) -> bool {
        self.registered.contains_key(&h)
    }

    /// Commits queued registration changes and delivers arriving BSMP
    /// messages — the sync-time bookkeeping of §6.2.
    pub fn commit_sync(&mut self) {
        for h in self.push_queue.drain(..) {
            self.registered.insert(h, ());
        }
        for h in self.pop_queue.drain(..) {
            self.registered.remove(&h);
        }
        if let Some(ts) = self.pending_tagsize.take() {
            self.tagsize = ts;
        }
        self.inbox.clear();
        // Deterministic delivery order.
        self.arriving
            .sort_by(|a, b| a.tag.cmp(&b.tag).then(a.payload.cmp(&b.payload)));
        for m in self.arriving.drain(..) {
            self.inbox.push_back(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let mut m = ProcMem::default();
        let h = m.alloc(8);
        m.write(h)[0] = 42;
        assert_eq!(m.read(h)[0], 42);
        assert_eq!(m.len(h), 8);
    }

    #[test]
    fn registration_takes_effect_at_sync() {
        let mut m = ProcMem::default();
        let h = m.alloc(4);
        m.queue_push_reg(h);
        assert!(!m.is_registered(h), "not visible before sync");
        m.commit_sync();
        assert!(m.is_registered(h));
        m.queue_pop_reg(h);
        assert!(m.is_registered(h), "pop also deferred");
        m.commit_sync();
        assert!(!m.is_registered(h));
    }

    #[test]
    fn tagsize_deferred() {
        let mut m = ProcMem::default();
        m.queue_tagsize(8);
        assert_eq!(m.tagsize, 0);
        m.commit_sync();
        assert_eq!(m.tagsize, 8);
    }

    #[test]
    fn bsmp_messages_visible_next_superstep() {
        let mut m = ProcMem::default();
        m.arriving.push(BsmpMsg {
            tag: vec![1],
            payload: vec![9, 9],
        });
        assert!(m.inbox.is_empty());
        m.commit_sync();
        assert_eq!(m.inbox.len(), 1);
        // The following sync clears undrained messages (BSPlib drops
        // unreceived messages at superstep end).
        m.commit_sync();
        assert!(m.inbox.is_empty());
    }

    #[test]
    #[should_panic]
    fn push_reg_unknown_buffer_rejected() {
        let mut m = ProcMem::default();
        m.queue_push_reg(RegHandle(3));
    }
}
