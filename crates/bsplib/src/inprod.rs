//! The `bspinprod` example computation (§3.1).
//!
//! A distributed inner product in two computation supersteps and one
//! communication step: local partial sums, a scatter of the scalar
//! partials to every process (a 1-relation), and a local accumulation.
//! The thesis uses it in strong-scaling mode (N = 10⁸, growing p) to show
//! the classic BSP model mispredicting by five orders of magnitude while
//! the measured curve follows Amdahl behaviour (Fig. 3.2).
//!
//! Vectors are modeled as all-ones (the numeric result is then `N`, which
//! the run verifies); the computation cost is charged through the `dot`
//! kernel at the local problem size, so cache effects at large `N/p` are
//! reflected.

use crate::ctx::BspCtx;
use crate::mem::RegHandle;
use crate::ops::StepOutcome;
use crate::runtime::{run_spmd, BspConfig, BspProgram};
use hpm_kernels::blas1::Dot;
use hpm_stats::quantile::median;

/// The SPMD inner-product program.
pub struct InProd {
    n_total: u64,
    step: usize,
    partials: Option<RegHandle>,
    /// Final result (valid after the run).
    pub result: f64,
}

impl InProd {
    /// Local slice length for this process (block distribution).
    fn local_n(&self, pid: usize, p: usize) -> u64 {
        let base = self.n_total / p as u64;
        let extra = self.n_total % p as u64;
        base + if (pid as u64) < extra { 1 } else { 0 }
    }
}

impl BspProgram for InProd {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let p = ctx.nprocs();
        match self.step {
            0 => {
                // Registration superstep: a p-slot array of partial sums.
                let h = ctx.alloc(8 * p);
                ctx.push_reg(h);
                self.partials = Some(h);
                self.step = 1;
                StepOutcome::Continue
            }
            1 => {
                // Local dot product, then scatter the scalar partial to
                // everyone (committed immediately after computing — the
                // early-communication discipline).
                let n = self.local_n(ctx.pid(), p) as usize;
                ctx.compute_kernel(&Dot, n.max(1), 1);
                let partial = n as f64; // all-ones vectors
                let reg = self.partials.expect("registered");
                let bytes = partial.to_le_bytes();
                let me = ctx.pid();
                for dst in 0..p {
                    ctx.put(dst, reg, 8 * me, &bytes);
                }
                self.step = 2;
                StepOutcome::Continue
            }
            _ => {
                // Accumulate the p partials locally.
                let reg = self.partials.expect("registered");
                let buf = ctx.read_buf(reg).to_vec();
                let mut acc = 0.0;
                for k in 0..p {
                    acc += f64::from_le_bytes(buf[8 * k..8 * k + 8].try_into().expect("8B"));
                }
                ctx.elapse(p as f64 * 1e-9); // p additions
                self.result = acc;
                StepOutcome::Halt
            }
        }
    }
}

/// Outcome of a timed inner-product experiment.
#[derive(Debug, Clone)]
pub struct InProdMeasurement {
    /// Median wall time of the computation (supersteps 1–2, excluding the
    /// registration step), over the repetitions.
    pub seconds: f64,
    /// The computed inner product (must equal `n_total`).
    pub result: f64,
}

/// Runs the inner product `reps` times and reports the median time of the
/// computational part, mirroring §3.1's "median value of 100 repetitions".
pub fn bspinprod(cfg: &BspConfig, n_total: u64, reps: usize) -> InProdMeasurement {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut result = 0.0;
    for rep in 0..reps {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(rep as u64);
        let run = run_spmd(&c, |_| InProd {
            n_total,
            step: 0,
            partials: None,
            result: 0.0,
        })
        .expect("inner product runs");
        times.push(run.superstep_time(1) + run.superstep_time(2));
        result = run.programs[0].result;
    }
    InProdMeasurement {
        seconds: median(&times),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn cfg(p: usize) -> BspConfig {
        BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            5,
        )
    }

    #[test]
    fn result_is_exact_for_all_process_counts() {
        for p in [1usize, 3, 8, 16] {
            let m = bspinprod(&cfg(p), 1_000_000, 1);
            assert_eq!(m.result, 1_000_000.0, "p={p}");
        }
    }

    #[test]
    fn uneven_division_still_exact() {
        let m = bspinprod(&cfg(7), 1_000_003, 1);
        assert_eq!(m.result, 1_000_003.0);
    }

    #[test]
    fn strong_scaling_compute_shrinks_but_asymptotes() {
        // Fig. 3.2's measured curve: time falls with p but flattens as
        // communication/sync dominate (no spurious minimum rebound of the
        // magnitude the classic model predicts).
        let n = 100_000_000u64;
        let t8 = bspinprod(&cfg(8), n, 3).seconds;
        let t32 = bspinprod(&cfg(32), n, 3).seconds;
        let t64 = bspinprod(&cfg(64), n, 3).seconds;
        assert!(t32 < t8, "more processes must help at this size");
        // Diminishing returns: the 32→64 gain is smaller than 8→32.
        let gain_a = t8 - t32;
        let gain_b = t32 - t64;
        assert!(
            gain_b < gain_a,
            "Amdahl flattening expected: {t8} {t32} {t64}"
        );
    }

    #[test]
    fn measured_time_is_far_from_classic_prediction() {
        // The headline of §3.1: the classic model misses by orders of
        // magnitude. With Table-3.1-like parameters the classic estimate
        // is ~milliseconds-scale flop counts; our measured time at p=8 and
        // N=1e8 is dominated by the ~0.05 s local dot.
        use hpm_core::classic::ClassicBsp;
        let n = 100_000_000u64;
        let measured = bspinprod(&cfg(8), n, 1).seconds;
        let classic = ClassicBsp::new(8, 991.695e6, 105.4, 30575.7).inner_product_seconds(n);
        // The classic estimate counts only flop equivalents; the measured
        // time includes realistic memory-bound rates and sync. They must
        // disagree visibly (the thesis reports 5 orders of magnitude on
        // log scale across the sweep; at p=8 the gap is smallest).
        assert!(
            measured / classic > 1.5 || classic / measured > 1.5,
            "classic {classic} vs measured {measured} suspiciously close"
        );
    }
}
