//! Smoke test: every registered experiment runs at quick effort and
//! produces non-empty artifacts.

use hpm_bench::experiments::{registry, run_experiment, Effort};

#[test]
fn every_experiment_runs_and_writes_output() {
    let dir = std::env::temp_dir().join(format!("hpm-exp-smoke-{}", std::process::id()));
    let effort = Effort::quick();
    for (id, _, _, _, _) in registry() {
        let paths = run_experiment(id, &dir, &effort)
            .unwrap_or_else(|| panic!("experiment {id} not found"));
        assert!(!paths.is_empty(), "{id} wrote nothing");
        for p in paths {
            let meta = std::fs::metadata(&p)
                .unwrap_or_else(|e| panic!("{id}: missing artifact {}: {e}", p.display()));
            assert!(meta.len() > 0, "{id}: empty artifact {}", p.display());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_experiment_is_rejected() {
    let dir = std::env::temp_dir();
    assert!(run_experiment("fig99_9", &dir, &Effort::quick()).is_none());
}

#[test]
fn registry_ids_are_unique() {
    let ids: Vec<&str> = registry().iter().map(|(id, _, _, _, _)| *id).collect();
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(ids.len(), dedup.len(), "duplicate experiment ids");
}
