//! Cross-crate integration: the full thesis pipeline from platform
//! benchmarking through prediction, simulation and adaptation.

use hpm::barriers::greedy::greedy_adaptive_barrier;
use hpm::barriers::patterns::{binary_tree, dissemination, linear, ring};
use hpm::bsplib::runtime::BspConfig;
use hpm::kernels::rate::{opteron_core, xeon_core};
use hpm::model::knowledge::verify_synchronizes;
use hpm::model::pattern::CommPattern;
use hpm::model::predictor::{predict_barrier, PayloadSchedule};
use hpm::simnet::barrier::BarrierSim;
use hpm::simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm::simnet::params::{opteron_cluster_params, xeon_cluster_params};
use hpm::stencil::bsp::{run_bsp_stencil, CommitDiscipline};
use hpm::stencil::predictor::predict_bsp_iteration;
use hpm::topology::{cluster_12x2x6, cluster_8x2x4, Placement, PlacementPolicy};

#[test]
fn adaptive_barrier_beats_or_matches_defaults_in_simulation() {
    // The Chapter 7 headline, end to end: benchmark the simulated
    // platform, generate a barrier, and verify by *execution* that it is
    // not worse than the library defaults (within noise).
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 60);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 1);
    let report = greedy_adaptive_barrier(&profile.costs);
    assert!(verify_synchronizes(&report.pattern).synchronizes());

    let sim = BarrierSim::new(&params, &placement);
    let payload = PayloadSchedule::none();
    let adapted = sim.measure(&report.pattern, &payload, 32, 2).mean();
    for pat in [dissemination(60), binary_tree(60), linear(60, 0)] {
        let d = sim.measure(&pat, &payload, 32, 2).mean();
        assert!(
            adapted <= d * 1.10,
            "adapted {adapted:.3e} lost to {} ({d:.3e})",
            pat.name()
        );
    }
}

#[test]
fn prediction_tracks_simulation_on_the_opteron_cluster_too() {
    // The 12×2×6 configuration of Figs. 5.10–5.13 with the same pipeline.
    let params = opteron_cluster_params();
    let placement = Placement::new(cluster_12x2x6(), PlacementPolicy::RoundRobin, 96);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 3);
    let sim = BarrierSim::new(&params, &placement);
    for pat in [dissemination(96), binary_tree(96)] {
        let predicted = predict_barrier(&pat, &profile.costs, &PayloadSchedule::none()).total;
        let measured = sim.measure(&pat, &PayloadSchedule::none(), 16, 4).mean();
        let rel = (predicted - measured).abs() / measured;
        assert!(
            rel < 1.0,
            "{}: prediction {predicted:.3e} vs measurement {measured:.3e}",
            pat.name()
        );
    }
}

#[test]
fn stencil_prediction_tracks_bsp_measurement() {
    // The B-series agreement at one configuration: prediction within a
    // factor 2 of the simulated BSP stencil (thesis-level accuracy).
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 32);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 5);
    let model = xeon_core();
    let predicted = predict_bsp_iteration(&profile, &model, &placement, 2048).total;
    let cfg = BspConfig::new(params, placement, model, 5);
    let measured =
        run_bsp_stencil(&cfg, 2048, 3, CommitDiscipline::EarlyUnbuffered, false).mean_iter();
    let ratio = predicted / measured;
    assert!(
        (0.5..2.0).contains(&ratio),
        "prediction {predicted:.3e} vs measurement {measured:.3e} (ratio {ratio:.2})"
    );
}

#[test]
fn extreme_patterns_synchronize_but_scale_poorly() {
    // §5.6.6's boundary cases: the ring barrier is correct but its
    // simulated cost dwarfs the dissemination barrier at scale.
    let p = 32;
    assert!(verify_synchronizes(&ring(p)).synchronizes());
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    let sim = BarrierSim::new(&params, &placement);
    let ring_t = sim.measure(&ring(p), &PayloadSchedule::none(), 8, 6).mean();
    let diss_t = sim
        .measure(&dissemination(p), &PayloadSchedule::none(), 8, 6)
        .mean();
    assert!(
        ring_t > 3.0 * diss_t,
        "ring {ring_t:.3e} vs dissemination {diss_t:.3e}"
    );
}

#[test]
fn heterogeneous_processors_shift_the_stencil_balance() {
    // A mixed model sanity check: slower cores make the same prediction
    // strictly larger (compute term dominates at this size).
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 7);
    let fast = predict_bsp_iteration(&profile, &xeon_core(), &placement, 4096).total;
    let slow = predict_bsp_iteration(&profile, &xeon_core().scaled(0.5), &placement, 4096).total;
    assert!(slow > fast * 1.5, "slow {slow:.3e} vs fast {fast:.3e}");
    // And the Opteron model differs from the Xeon model.
    let opteron = predict_bsp_iteration(&profile, &opteron_core(), &placement, 4096).total;
    assert!(opteron != fast);
}

#[test]
fn faster_interconnect_shrinks_barrier_spread_and_overlap_benefit() {
    // §9.2.4 future-work probe: on an InfiniBand-class network the gap
    // between barrier algorithms compresses, and the framework's
    // predictions remain consistent with simulation.
    use hpm::simnet::params::infiniband_cluster_params;
    let p = 64;
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    let payload = PayloadSchedule::none();
    let spread = |params: &hpm::simnet::params::PlatformParams| {
        let sim = BarrierSim::new(params, &placement);
        let lin = sim.measure(&linear(p, 0), &payload, 8, 9).mean();
        let dis = sim.measure(&dissemination(p), &payload, 8, 9).mean();
        lin / dis
    };
    let gige = spread(&xeon_cluster_params());
    let ib = spread(&infiniband_cluster_params());
    assert!(
        ib < gige,
        "IB must compress the linear/dissemination gap: gige {gige:.1}x vs ib {ib:.1}x"
    );
    // Prediction still tracks simulation on the new interconnect.
    let params = infiniband_cluster_params();
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 13);
    let sim = BarrierSim::new(&params, &placement);
    let pat = dissemination(p);
    let predicted = predict_barrier(&pat, &profile.costs, &payload).total;
    let measured = sim.measure(&pat, &payload, 16, 14).mean();
    let rel = (predicted - measured).abs() / measured;
    assert!(rel < 1.0, "IB prediction {predicted:.3e} vs {measured:.3e}");
}
