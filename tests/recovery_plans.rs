//! Property-based tests for the recovery layer's plan surgery:
//! `restrict_to_survivors` pruning and the `repair_plan` synthesizer,
//! cross-checked against the `hpm-analyze` rule set.

use hpm::analyze::{analyze, analyze_with_goal, Analyzer, Severity};
use hpm::barriers::patterns::{binary_tree, dissemination, linear, ring};
use hpm::model::knowledge::KnowledgeGoal;
use hpm::model::matrix::IMat;
use hpm::model::pattern::CommPattern;
use hpm::model::plan::CompiledPattern;
use hpm::model::recovery::{remap_goal, repair_plan};
use proptest::prelude::*;

/// SplitMix64 step — random structure sampling without growing the
/// vendored proptest's strategy surface.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A random staged pattern: `n_stages` stages of up to `2p` random
/// non-self edges each (duplicates collapse in the dense matrix).
fn random_plan(p: usize, n_stages: usize, seed: u64) -> CompiledPattern {
    struct RandomPattern {
        p: usize,
        stages: Vec<IMat>,
    }
    impl CommPattern for RandomPattern {
        fn name(&self) -> &str {
            "random"
        }
        fn p(&self) -> usize {
            self.p
        }
        fn stages(&self) -> usize {
            self.stages.len()
        }
        fn stage(&self, k: usize) -> &IMat {
            &self.stages[k]
        }
    }
    let mut state = seed;
    let stages: Vec<IMat> = (0..n_stages)
        .map(|_| {
            let mut m = IMat::empty(p);
            let edges = 1 + (splitmix(&mut state) as usize) % (2 * p);
            for _ in 0..edges {
                let i = (splitmix(&mut state) as usize) % p;
                let j = (splitmix(&mut state) as usize) % p;
                if i != j {
                    m.insert(i, j);
                }
            }
            m
        })
        .collect();
    CompiledPattern::compile(&RandomPattern { p, stages })
}

/// A random proper subset of `0..p` with `k` members.
fn random_crash_set(p: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut set = Vec::new();
    while set.len() < k {
        let r = (splitmix(&mut state) as usize) % p;
        if !set.contains(&r) {
            set.push(r);
        }
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruning any random pattern to any proper survivor set yields a
    /// plan the structural analyzer accepts without a single
    /// error-severity diagnostic: CSR invariants, mirror consistency,
    /// rank ranges and the no-self-send rule all survive the surgery.
    /// (Dead-rank *warnings* are expected — isolating a survivor is
    /// legitimate post-crash shape.)
    #[test]
    fn restricted_plans_pass_structural_analysis(
        p in 2usize..48,
        n_stages in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let plan = random_plan(p, n_stages, seed);
        let k = 1 + (seed as usize) % (p - 1);
        let crashed = random_crash_set(p, k, seed ^ 0xDEAD);
        let restricted = plan.restrict_to_survivors(&crashed);
        prop_assert_eq!(restricted.p(), p - k);
        prop_assert!(restricted.total_signals() <= plan.total_signals());
        let errors: Vec<_> = analyze(&restricted)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "{errors:?}");
    }

    /// Wherever the static k-crash verdict says a *deployed* barrier
    /// survives a crash set, the repair synthesizer must also produce a
    /// plan (re-planning is at least as strong as pruning), and every
    /// synthesized plan must pass the full analyzer — structural rules
    /// and the remapped knowledge goal — with zero diagnostics.
    #[test]
    fn repair_is_at_least_as_strong_as_static_survival(
        p in 2usize..48,
        k in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let k = k.min(p - 1);
        let crashed = random_crash_set(p, k, seed);
        let mut an = Analyzer::new();
        for (pattern, goal) in [
            (dissemination(p), KnowledgeGoal::AllToAll),
            (binary_tree(p), KnowledgeGoal::AllToAll),
            (ring(p), KnowledgeGoal::AllToAll),
            (linear(p, 0), KnowledgeGoal::RootGathers(0)),
        ] {
            let plan = pattern.plan();
            let verdict = an.k_crash_coverage(&plan, goal, &crashed);
            let repaired = repair_plan(p, goal, &crashed);
            if verdict.survives() {
                prop_assert!(
                    repaired.is_some(),
                    "{}: statically survivable {crashed:?} must be repairable",
                    plan.name()
                );
            }
            // The analyzer rule is the synthesizer run in the negative.
            prop_assert_eq!(
                an.unrecoverable_crash_set(&plan, goal, &crashed).is_some(),
                repaired.is_none()
            );
            if let Some(rp) = repaired {
                let remapped = remap_goal(goal, p, &crashed)
                    .expect("repairable set has a remappable goal");
                let diags = analyze_with_goal(&rp, remapped);
                prop_assert!(diags.is_empty(), "{}: {diags:?}", rp.name());
            }
        }
    }

    /// Rooted goals are repairable exactly when the root survives; the
    /// synthesized tree is rooted at the root's compacted rank.
    #[test]
    fn rooted_repairs_follow_the_root(
        p in 2usize..48,
        root in 0usize..48,
        seed in 0u64..1_000_000,
    ) {
        let root = root % p;
        let k = 1 + (seed as usize) % (p - 1);
        let crashed = random_crash_set(p, k, seed);
        for goal in [KnowledgeGoal::RootGathers(root), KnowledgeGoal::RootReaches(root)] {
            let repaired = repair_plan(p, goal, &crashed);
            prop_assert_eq!(repaired.is_some(), !crashed.contains(&root));
            if let Some(rp) = repaired {
                prop_assert_eq!(rp.p(), p - k);
                let compact_root = (0..root).filter(|r| !crashed.contains(r)).count();
                let expect = match goal {
                    KnowledgeGoal::RootGathers(_) => KnowledgeGoal::RootGathers(compact_root),
                    _ => KnowledgeGoal::RootReaches(compact_root),
                };
                prop_assert_eq!(remap_goal(goal, p, &crashed), Some(expect));
            }
        }
    }
}
