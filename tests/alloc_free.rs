//! PR 4 acceptance: after warmup, the compiled barrier executor performs
//! zero heap allocations per repetition.
//!
//! A counting global allocator wraps the system allocator; the test warms
//! up one `(NetState, SimScratch)` pair, snapshots the allocation
//! counter, runs many full repetitions (including RNG derivation, the
//! measurement loop's real per-item work) and asserts the counter did not
//! move. This file holds exactly one test: integration-test binaries are
//! one process each, so no concurrent test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn compiled_barrier_repetitions_allocate_nothing() {
    use hpm::barriers::patterns::{binary_tree, dissemination};
    use hpm::model::pattern::CommPattern;
    use hpm::model::predictor::PayloadSchedule;
    use hpm::simnet::barrier::{BarrierSim, SimScratch};
    use hpm::simnet::batch::LaneScratch;
    use hpm::simnet::net::NetState;
    use hpm::simnet::params::xeon_cluster_params;
    use hpm::stats::rng::{derive_rng, ScalarJitter};
    use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let sim = BarrierSim::new(&params, &placement);
    for (pattern, payload) in [
        (dissemination(64), PayloadSchedule::none()),
        (
            binary_tree(64),
            PayloadSchedule::dissemination_count_map(64),
        ),
    ] {
        let plan = pattern.plan();
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        let mut lanes = LaneScratch::new();
        // Warmup: one full repetition through every stage shape on each
        // engine — scalar-jitter compiled, batch-filled scalar, and the
        // 8-lane SoA executor (sizing jitter tables and lane buffers).
        let mut rng = derive_rng(42, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let warm = sim.run_total_compiled(&plan, &payload, &mut jit, &mut net, &mut scratch);
        assert!(warm > 0.0);
        assert!(sim.run_total_batched(&plan, &payload, 42, 0, &mut net, &mut scratch) > 0.0);
        sim.run_batch_compiled(&plan, &payload, 42, 0, 8, &mut lanes);

        // The libtest harness owns background threads that allocate
        // sporadically through the same global allocator, so a single
        // trial can read a few stray counts. A genuine per-repetition
        // allocation would show up in *every* trial (≥ 256 counts), so
        // take the minimum across trials and require it to be zero.
        let mut min_delta = usize::MAX;
        for trial in 0..8 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let mut acc = 0.0;
            for rep in 0..64u64 {
                let mut rng = derive_rng(42 + trial, rep);
                let mut jit = ScalarJitter::new(params.jitter, &mut rng);
                acc += sim.run_total_compiled(&plan, &payload, &mut jit, &mut net, &mut scratch);
                // The batched engines refill their tables in place.
                acc +=
                    sim.run_total_batched(&plan, &payload, 42 + trial, rep, &mut net, &mut scratch);
                for &t in sim.run_batch_compiled(&plan, &payload, trial, 8 * rep, 8, &mut lanes) {
                    acc += t;
                }
            }
            let after = ALLOCATIONS.load(Ordering::SeqCst);
            assert!(acc.is_finite() && acc > 0.0);
            min_delta = min_delta.min(after - before);
        }
        assert_eq!(
            min_delta,
            0,
            "{}: every trial of 64 warm repetitions heap-allocated (min {min_delta})",
            plan.name(),
        );
    }

    // The knowledge verifier through caller-owned scratch: after one
    // warmup sizes the three p×p tables, repeated verification loops —
    // including across the two pattern shapes — stay off the heap
    // entirely (queries through the borrowing view included).
    let plans = [
        dissemination(64).plan(),
        binary_tree(64).plan(),
        dissemination(48).plan(),
    ];
    let mut scratch = hpm::model::knowledge::VerifyScratch::new();
    assert!(scratch.verify(&plans[0]).synchronizes());
    let mut min_delta = usize::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut synced = 0usize;
        for _ in 0..8 {
            for plan in &plans {
                let view = scratch.verify(plan);
                if view.synchronizes() && view.root_gathers(0) {
                    synced += 1;
                }
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(synced, 8 * plans.len());
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "every trial of warm verify loops heap-allocated (min {min_delta})"
    );
}
