//! PR 10 acceptance: after warmup, the faulty and recovering barrier
//! executors perform zero heap allocations per repetition on their
//! steady-state paths.
//!
//! Same harness as `alloc_free.rs`: a counting global allocator, one
//! warmup repetition to size every reused buffer (fault plan, timeout
//! bookkeeping, jitter tables, reports), then many repetitions under a
//! snapshot of the allocation counter. Two paths are covered: the faulty
//! executor under a drop + slow-node model, and the recovering executor
//! on its no-failure path (a *successful* recovery synthesizes a fresh
//! plan, which legitimately allocates — that path is exercised
//! functionally elsewhere). Stragglers are excluded: realizing a Pareto
//! quantile table allocates by design. This file holds exactly one test:
//! integration-test binaries are one process each, so no concurrent test
//! can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn faulty_and_recovering_repetitions_allocate_nothing() {
    use hpm::barriers::patterns::dissemination;
    use hpm::model::knowledge::KnowledgeGoal;
    use hpm::model::pattern::CommPattern;
    use hpm::model::predictor::PayloadSchedule;
    use hpm::simnet::barrier::{BarrierSim, SimScratch, BARRIER_JITTER_LABEL};
    use hpm::simnet::net::NetState;
    use hpm::simnet::params::xeon_cluster_params;
    use hpm::simnet::recovery::{RecoveryReport, RecoveryScratch};
    use hpm::simnet::{FaultReport, FaultScratch};
    use hpm::stats::fault::{DropProb, FaultModel};
    use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let sim = BarrierSim::new(&params, &placement);
    let plan = dissemination(64).plan();
    let payload = PayloadSchedule::none();
    let zeros = vec![0.0; 64];

    // Faulty executor: drops, retries and slow nodes — every fault
    // stream except the allocating Pareto straggler table.
    let faulty_model = FaultModel {
        drop: DropProb::uniform(0.05),
        max_retries: 12,
        timeout: 2e-4,
        slow_prob: 0.2,
        slow_mult: 1.5,
        ..FaultModel::NONE
    };
    faulty_model.validate();
    let mut net = NetState::new(&placement);
    let mut scratch = SimScratch::new(&placement);
    let mut fs = FaultScratch::new();
    let mut report = FaultReport::new(64);
    net.reset();
    sim.run_once_faulty_into(
        &plan,
        &payload,
        &faulty_model,
        &zeros,
        &mut net,
        7,
        BARRIER_JITTER_LABEL,
        0,
        &mut scratch,
        &mut fs,
        &mut report,
    );
    assert!(report.total().is_finite());

    let mut min_delta = usize::MAX;
    for trial in 0..8u64 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut acc = 0.0;
        for rep in 0..64u64 {
            net.reset();
            sim.run_once_faulty_into(
                &plan,
                &payload,
                &faulty_model,
                &zeros,
                &mut net,
                7 + trial,
                BARRIER_JITTER_LABEL,
                rep,
                &mut scratch,
                &mut fs,
                &mut report,
            );
            acc += report.total();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(acc.is_finite() && acc > 0.0);
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "every trial of 64 warm faulty repetitions heap-allocated (min {min_delta})"
    );

    // Recovering executor on the no-failure path: fault streams flow
    // (slow and degraded nodes) but no rank can crash or time out, so
    // `finish_recovery` takes its clean early exit every repetition.
    let clean_model = FaultModel {
        slow_prob: 0.2,
        slow_mult: 1.5,
        degraded_prob: 0.1,
        degraded_mult: 2.0,
        ..FaultModel::NONE
    };
    clean_model.validate();
    let mut rs = RecoveryScratch::new();
    let mut rec = RecoveryReport::new(64);
    net.reset();
    sim.run_once_recovering_into(
        &plan,
        &payload,
        KnowledgeGoal::AllToAll,
        &clean_model,
        &zeros,
        &mut net,
        7,
        BARRIER_JITTER_LABEL,
        0,
        &mut scratch,
        &mut rs,
        &mut rec,
    );
    assert!(rec.recovered && !rec.replanned);

    let mut min_delta = usize::MAX;
    for trial in 0..8u64 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut acc = 0.0;
        for rep in 0..64u64 {
            net.reset();
            sim.run_once_recovering_into(
                &plan,
                &payload,
                KnowledgeGoal::AllToAll,
                &clean_model,
                &zeros,
                &mut net,
                7 + trial,
                BARRIER_JITTER_LABEL,
                rep,
                &mut scratch,
                &mut rs,
                &mut rec,
            );
            assert!(rec.recovered);
            acc += rec.total();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(acc.is_finite() && acc > 0.0);
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "every trial of 64 warm recovering repetitions heap-allocated (min {min_delta})"
    );
}
