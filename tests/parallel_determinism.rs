//! PR 3 acceptance tests: the parallel experiment engine must be
//! invisible in the numbers, and the BSPlib sync must account for
//! sender-side completion.
//!
//! The first test drives whole experiments end-to-end — microbenchmark,
//! barrier executor, sweep, CSV writer — at several thread counts and
//! compares the produced files *byte for byte*. The property test then
//! checks the headline-bugfix invariant on randomized communication
//! programs: no process completes a superstep's sync before its own send
//! tails, its inbound data, its barrier exit, or its compute end.

use hpm::bsplib::runtime::{BspConfig, SuperstepTrace, SyncPattern};
use hpm::bsplib::{run_spmd, BspCtx, BspProgram, RegHandle, StepOutcome};
use hpm::kernels::rate::xeon_core;
use hpm::simnet::params::xeon_cluster_params;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};
use hpm_bench::experiments::{run_experiment, Effort};
use proptest::prelude::*;

/// FNV-1a over the bit patterns of a sample vector.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn fnv_samples(samples: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in samples {
        h ^= s.to_bits();
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over raw bytes.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Golden pin of the batched jitter engine (PR 5): the samples
/// [`hpm::simnet::BarrierSim::measure`] produces were hashed on the new
/// engine (per-repetition counter streams, tabulated log-normal
/// quantiles, lane-parallel execution) and must not move again — the
/// draw-order contract was *deliberately* re-struck in this PR (every
/// repetition owns the stream `(seed, BARRIER_JITTER_LABEL, rep)`; see
/// DESIGN.md, "The jitter engine") and these hashes are its pin. The
/// statistical-equivalence tests in `hpm-simnet`/`hpm-stats` tie the new
/// stream to the old scalar Box-Muller stream distribution-wise; a
/// change *here* means different physics or a silently shifted stream,
/// not just different performance.
///
/// Gated to the CI platform: the central draws are pure arithmetic
/// (bit-identical anywhere), but deep-tail draws and the quantile-table
/// knots evaluate `ln` through the platform libm, whose last-ULP
/// rounding differs across libc/architecture. On other hosts the
/// serial-vs-parallel and lane-vs-scalar equivalences still hold (and
/// are tested); only these absolute bit patterns are glibc/x86-64
/// specific.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[test]
fn measure_samples_match_jitter_engine_goldens() {
    use hpm::barriers::patterns::{binary_tree, dissemination};
    use hpm::model::predictor::PayloadSchedule;
    use hpm::simnet::barrier::BarrierSim;

    let params = xeon_cluster_params();
    for (p, golden_first, golden_fnv) in [
        (16usize, 4538945398814996384u64, 0xd02cb75cc15007f9u64),
        (64, 4544200415581333245, 0xb462956ad85c2d56),
    ] {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let sim = BarrierSim::new(&params, &placement);
        let m = sim.measure(&dissemination(p), &PayloadSchedule::none(), 256, 42);
        assert_eq!(m.samples.len(), 256);
        assert_eq!(m.samples[0].to_bits(), golden_first, "p={p} first sample");
        assert_eq!(fnv_samples(&m.samples), golden_fnv, "p={p} sample stream");
    }
    // A payload-carrying tree pattern exercises the srcs/posted tables.
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 24);
    let sim = BarrierSim::new(&params, &placement);
    let m = sim.measure(
        &binary_tree(24),
        &PayloadSchedule::dissemination_count_map(24),
        64,
        7,
    );
    assert_eq!(m.samples[0].to_bits(), 0x3f23cc0c930b6d0b);
    assert_eq!(fnv_samples(&m.samples), 0x7841983e9cac3925);
}

/// A representatively nasty fault model for the determinism tests:
/// every fault class enabled at once.
fn stress_fault_model() -> hpm::stats::fault::FaultModel {
    use hpm::stats::fault::{DropProb, FaultModel};
    FaultModel {
        crash_count: 2,
        crash_window: 1e-4,
        drop: DropProb::uniform(0.02),
        degraded_prob: 0.1,
        degraded_mult: 3.0,
        slow_prob: 0.2,
        slow_mult: 1.5,
        straggler_prob: 0.1,
        straggler_scale: 1e-4,
        straggler_alpha: 1.5,
        timeout: 2e-4,
        ..FaultModel::NONE
    }
}

/// PR 9 acceptance: faulty runs are as deterministic as healthy ones.
/// `measure_faulty` under a fully-loaded fault model is bit-identical at
/// every thread count, and repetition `r` of the fan-out reproduces a
/// lone `run_once_faulty` at `rep = r` exactly — worker grouping is
/// invisible, the same contract the healthy lane batching keeps.
#[test]
fn faulty_measure_bit_identical_across_thread_counts() {
    use hpm::barriers::patterns::dissemination;
    use hpm::model::pattern::CommPattern;
    use hpm::model::predictor::PayloadSchedule;
    use hpm::simnet::barrier::{BarrierSim, SimScratch, BARRIER_JITTER_LABEL};
    use hpm::simnet::net::NetState;

    let params = xeon_cluster_params();
    let p = 64;
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    let sim = BarrierSim::new(&params, &placement);
    let plan = dissemination(p).plan();
    let fault = stress_fault_model();
    let reps = 32;
    let seed = 2026;
    let serial = hpm::par::with_threads(Some(1), || {
        sim.measure_faulty(&plan, &PayloadSchedule::none(), &fault, reps, seed)
    });
    assert_eq!(serial.len(), reps);
    // The model actually bites: some repetition crashed or timed out.
    assert!(
        serial.iter().any(|r| !r.all_completed()),
        "stress model produced no faulty outcome"
    );
    for threads in [2, 8] {
        let par = hpm::par::with_threads(Some(threads), || {
            sim.measure_faulty(&plan, &PayloadSchedule::none(), &fault, reps, seed)
        });
        assert_eq!(serial, par, "faulty reports moved at {threads} threads");
    }
    // Lane/worker invisibility: repetition r ≡ a lone faulty run at rep r.
    let mut scratch = SimScratch::new(&placement);
    let mut net = NetState::new(&placement);
    let zeros = vec![0.0; p];
    for r in [0usize, 7, 31] {
        net.reset();
        let lone = sim.run_once_faulty(
            &plan,
            &PayloadSchedule::none(),
            &fault,
            &zeros,
            &mut net,
            seed,
            BARRIER_JITTER_LABEL,
            r as u64,
            &mut scratch,
        );
        assert_eq!(serial[r], lone, "rep {r}");
    }
    // Golden pin of the faulty exit stream (same platform gate as the
    // healthy goldens above: deep-tail draws route through libm `ln`).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let totals: Vec<f64> = serial.iter().map(|r| r.total()).collect();
        assert_eq!(
            fnv_samples(&totals),
            0x7663fe4035a77fb7,
            "faulty exit stream diverged from its golden"
        );
    }
}

/// Runs the given experiments at quick effort into a throwaway directory
/// and returns every produced file as `(name, bytes)`.
fn run_all(ids: &[&str], threads: usize, tag: &str) -> Vec<(String, Vec<u8>)> {
    let dir = std::env::temp_dir().join(format!("hpm-par-det-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut files = Vec::new();
    hpm::par::with_threads(Some(threads), || {
        for id in ids {
            for path in run_experiment(id, &dir, &Effort::quick()).expect("known experiment id") {
                let name = path
                    .file_name()
                    .expect("file name")
                    .to_string_lossy()
                    .into_owned();
                files.push((name, std::fs::read(&path).expect("read artifact")));
            }
        }
    });
    std::fs::remove_dir_all(&dir).ok();
    files
}

/// Parallel sweeps must produce byte-identical CSV output to serial ones
/// at every thread count: every sweep point derives its RNG streams from
/// the seed and its own coordinates, so the schedule cannot leak in.
#[test]
fn experiment_csv_bytes_identical_across_thread_counts() {
    // Simulated (host-clock-free) experiments covering the three ported
    // layers: the microbenchmark + barrier sweep (fig5_6), the BSPlib
    // sync sweep (fig6_3), and the collective sweep's nested fan-out.
    let ids = ["fig5_6", "fig6_3", "collectives"];
    let serial = run_all(&ids, 1, "t1");
    assert!(!serial.is_empty());
    // Golden pin (re-struck in PR 5 on the batched jitter engine —
    // microbenchmark units and barrier repetitions now fill per-unit
    // jitter tables instead of stepping `StdRng`): these artifacts were
    // hashed byte-for-byte on the new engine and pin its draw-order
    // contract end-to-end through the experiment layer. Like the sample
    // goldens above, the absolute hashes hold only under the CI
    // platform's libm.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        let goldens: &[(&str, u64)] = &[
            ("collectives_predict_vs_sim.csv", 0x2801cd351cf23eb3),
            ("fig5_6to9_8x2x4_abs_error.csv", 0x8ece8e013238c438),
            ("fig5_6to9_8x2x4_measured.csv", 0x09cf407987b254b2),
            ("fig5_6to9_8x2x4_predicted.csv", 0x09e4437cdebf89f9),
            ("fig5_6to9_8x2x4_rel_error.csv", 0xe02e5b3ef0bbe567),
            ("fig6_3.csv", 0x8280a13f079aa07f),
        ];
        for (name, want) in goldens {
            let (_, bytes) = serial
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing artifact {name}"));
            assert_eq!(
                fnv_bytes(bytes),
                *want,
                "{name} diverged from the pre-refactor golden bytes"
            );
        }
    }
    let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [2, 3, hw.max(2)] {
        let par = run_all(&ids, threads, &format!("t{threads}"));
        assert_eq!(serial.len(), par.len(), "threads={threads}");
        for ((sn, sb), (pn, pb)) in serial.iter().zip(par.iter()) {
            assert_eq!(sn, pn, "threads={threads}");
            assert_eq!(sb, pb, "threads={threads}: {sn} differs from serial run");
        }
    }
}

/// PR 7 acceptance: the sampled microbenchmark at p = 256 is
/// bit-deterministic at any thread count (selection is serial on its own
/// counter stream; measured units are keyed by matrix position), and its
/// per-class fits land within tolerance of the exhaustive pooled fits —
/// the exhaustive run measures all 65 280 ordered pairs, the sampled one
/// a dozen per class.
#[test]
fn sampled_microbench_deterministic_and_close_at_p256() {
    use hpm::simnet::microbench::{bench_platform_classes, MicrobenchConfig};
    use hpm::topology::{cluster_32x2x4, LinkClass};

    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_32x2x4(), PlacementPolicy::RoundRobin, 256);
    let exhaustive_cfg = MicrobenchConfig {
        reps: 3,
        max_requests: 2,
        // Sizes must reach past the latency floor or the cheap classes'
        // bandwidth slope is pure jitter noise.
        size_exponents: (0, 12),
        pair_sample: None,
    };
    let sampled_cfg = exhaustive_cfg.with_pair_sample(12);

    let serial = hpm::par::with_threads(Some(1), || {
        bench_platform_classes(&params, &placement, &sampled_cfg, 2012)
    });
    let hw = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [2, 3, hw.max(2)] {
        let par = hpm::par::with_threads(Some(threads), || {
            bench_platform_classes(&params, &placement, &sampled_cfg, 2012)
        });
        assert_eq!(serial, par, "sampled profile moved at {threads} threads");
    }

    let exhaustive = bench_platform_classes(&params, &placement, &exhaustive_cfg, 2012);
    // Round-robin fills all 32 nodes with 8 ranks each: 24 same-socket
    // and 32 same-node ordered pairs per node, the rest remote.
    assert_eq!(
        exhaustive.sampled_pairs,
        [0, 32 * 24, 32 * 32, 256 * 256 - 32 * 64]
    );
    for class in [
        LinkClass::SameSocket,
        LinkClass::SameNode,
        LinkClass::Remote,
    ] {
        let c = class.index();
        assert_eq!(serial.sampled_pairs[c], 12, "{class:?} sample count");
        for (name, s, e) in [
            ("O", serial.o[c], exhaustive.o[c]),
            ("L", serial.l[c], exhaustive.l[c]),
            ("beta", serial.beta[c], exhaustive.beta[c]),
        ] {
            assert!(
                (s - e).abs() / e < 0.25,
                "{class:?} {name}: sampled {s} vs exhaustive {e}"
            );
        }
    }
    assert_eq!(serial.o_self, exhaustive.o_self, "diagonal pass is shared");
}

/// A randomized chatter program: every process computes for a
/// pid-dependent time, then commits a mix of puts, hp-puts and BSMP
/// sends to its next `fan` neighbours, twice, then halts.
struct Chatter {
    step: usize,
    buf: Option<RegHandle>,
    bytes: usize,
    fan: usize,
}

impl BspProgram for Chatter {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        match self.step {
            0 => {
                let h = ctx.alloc(self.bytes);
                ctx.push_reg(h);
                self.buf = Some(h);
                self.step = 1;
                StepOutcome::Continue
            }
            1 | 2 => {
                let p = ctx.nprocs();
                let me = ctx.pid();
                // Skewed compute ends make the late senders' tails land
                // inside other processes' sync windows.
                ctx.elapse(1e-6 * ((me * 7919 + self.step * 131) % 13) as f64);
                let data = vec![me as u8; self.bytes];
                let buf = self.buf.expect("allocated");
                for k in 1..=self.fan.min(p - 1) {
                    let dst = (me + k) % p;
                    if k % 2 == 0 {
                        ctx.hpput(dst, buf, 0, &data);
                    } else {
                        ctx.put(dst, buf, 0, &data);
                    }
                }
                ctx.send((me + 1) % p, &[], &data);
                self.step += 1;
                StepOutcome::Continue
            }
            _ => StepOutcome::Halt,
        }
    }
}

/// The per-trace completion invariant the headline bugfix establishes.
fn assert_completion_covers(tr: &SuperstepTrace, ctxt: &str) {
    for i in 0..tr.completion.len() {
        // `send_complete` is the max of the process' messages'
        // `send_done` and `recv_complete` the max of its inbound
        // `processed` (each floored at compute end), so completion
        // covering both covers every individual message.
        assert!(
            tr.completion[i] >= tr.send_complete[i],
            "{ctxt} pid {i}: completion {} < send tail {}",
            tr.completion[i],
            tr.send_complete[i]
        );
        assert!(tr.completion[i] >= tr.recv_complete[i], "{ctxt} pid {i}");
        assert!(tr.completion[i] >= tr.sync_exit[i], "{ctxt} pid {i}");
        assert!(tr.completion[i] >= tr.compute_end[i], "{ctxt} pid {i}");
        assert!(tr.send_complete[i] >= tr.compute_end[i], "{ctxt} pid {i}");
        assert!(tr.recv_complete[i] >= tr.compute_end[i], "{ctxt} pid {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PR 9 acceptance: a zero-fault `FaultModel` leaves the faulty
    /// executor bitwise identical to the fault-free `measure_compiled` —
    /// for random process counts, repetition counts and seeds. Fault
    /// randomness lives in disjoint streams and neutral plans multiply
    /// by exactly 1.0 / add +0.0, so not a single bit may move.
    #[test]
    fn zero_fault_measure_matches_fault_free_bitwise(
        p in 2usize..32,
        reps in 1usize..12,
        seed in 0u64..1000,
    ) {
        use hpm::barriers::patterns::dissemination;
        use hpm::model::pattern::CommPattern;
        use hpm::model::predictor::PayloadSchedule;
        use hpm::simnet::barrier::BarrierSim;
        use hpm::stats::fault::FaultModel;

        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p).plan();
        let healthy = sim.measure_compiled(&plan, &PayloadSchedule::none(), reps, seed);
        let faulty = sim.measure_faulty(&plan, &PayloadSchedule::none(), &FaultModel::NONE, reps, seed);
        prop_assert_eq!(healthy.samples.len(), reps);
        prop_assert_eq!(faulty.len(), reps);
        for (r, rep) in faulty.iter().enumerate() {
            prop_assert!(rep.all_completed(), "rep {} not completed under NONE", r);
            prop_assert_eq!(
                rep.total().to_bits(),
                healthy.samples[r].to_bits(),
                "rep {}: faulty executor moved a bit under the zero-fault model",
                r
            );
        }
    }

    /// `run_spmd` never lets a process complete a sync before its own
    /// issued transfers' sender-side cost and its inbound data have
    /// elapsed — for random process counts, payload sizes, fan-outs,
    /// seeds and sync shapes.
    #[test]
    fn run_spmd_completion_covers_all_tails(
        p in 2usize..16,
        bytes in 1usize..4096,
        fan in 1usize..6,
        seed in 0u64..1000,
        shape in 0usize..3,
    ) {
        let mut cfg = BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            seed,
        );
        cfg.sync = match shape {
            0 => SyncPattern::Dissemination,
            1 => SyncPattern::Linear { root: p - 1 },
            _ => SyncPattern::BinaryTree,
        };
        let res = run_spmd(&cfg, |_| Chatter { step: 0, buf: None, bytes, fan })
            .expect("run succeeds");
        prop_assert_eq!(res.superstep_count(), 4);
        for (k, tr) in res.supersteps.iter().enumerate() {
            assert_completion_covers(tr, &format!("p={p} seed={seed} shape={shape} step {k}"));
        }
    }
}
