//! Property-based tests over the core data structures and invariants.

use hpm::barriers::hybrid::{hybrid_barrier, GatherShape};
use hpm::barriers::patterns::{all_to_all, binary_tree, dissemination, kary_tree, linear, ring};
use hpm::barriers::sss::sss_clusters;
use hpm::bsplib::runtime::BspConfig;
use hpm::collectives::exec::{run_reduce, run_scan, seed_vector};
use hpm::collectives::pattern::catalog;
use hpm::collectives::predict::predict_collective;
use hpm::kernels::rate::xeon_core;
use hpm::model::compute::{imbalance, superstep_times};
use hpm::model::knowledge::verify_synchronizes;
use hpm::model::matrix::DMat;
use hpm::model::pattern::CommPattern;
use hpm::model::predictor::{predict_barrier, CommCosts, PayloadSchedule};
use hpm::model::superstep::SuperstepModel;
use hpm::simnet::params::xeon_cluster_params;
use hpm::stats::quantile::{median, quantile};
use hpm::stats::regression::LinearFit;
use hpm::stencil::decomp::Decomposition;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every standard builder synchronizes for every process count.
    #[test]
    fn all_standard_barriers_synchronize(p in 2usize..48) {
        prop_assert!(verify_synchronizes(&linear(p, 0)).synchronizes());
        prop_assert!(verify_synchronizes(&dissemination(p)).synchronizes());
        prop_assert!(verify_synchronizes(&binary_tree(p)).synchronizes());
        prop_assert!(verify_synchronizes(&ring(p)).synchronizes());
        prop_assert!(verify_synchronizes(&all_to_all(p)).synchronizes());
    }

    /// Arbitrary-degree trees synchronize and have the 2(p−1) signal
    /// count invariant.
    #[test]
    fn kary_trees_synchronize(p in 2usize..40, d in 1usize..6) {
        let b = kary_tree(p, d);
        prop_assert!(verify_synchronizes(&b).synchronizes());
        prop_assert_eq!(b.total_signals(), 2 * (p - 1));
    }

    /// Dropping the final stage of a dissemination barrier (p > 2) must
    /// break synchronization — the stage count is tight.
    #[test]
    fn dissemination_stage_count_is_tight(p in 3usize..33) {
        use hpm::model::matrix::IMat;
        use hpm::model::pattern::BarrierPattern;
        let full = dissemination(p);
        if full.stages() >= 2 {
            let stages: Vec<IMat> =
                (0..full.stages() - 1).map(|s| full.stage(s).clone()).collect();
            let truncated = BarrierPattern::new("short", p, stages);
            prop_assert!(!verify_synchronizes(&truncated).synchronizes());
        }
    }

    /// The flat compiled form is a faithful view of the dense encoding:
    /// on random patterns, CSR `dsts`/`srcs` enumeration, degrees, the
    /// precomputed last-send table and the §5.6.5 posted booleans all
    /// equal their dense-`IMat` derivations.
    #[test]
    fn compiled_plan_matches_dense_pattern(
        p in 1usize..64,
        n_stages in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        use hpm::model::matrix::IMat;
        use hpm::model::plan::CompiledPattern;

        /// A raw staged pattern without the barrier constructors'
        /// non-empty-stage validation, so degenerate shapes (p = 1,
        /// zero stages, idle ranks) are covered too.
        struct RandomPattern {
            p: usize,
            stages: Vec<IMat>,
        }
        impl CommPattern for RandomPattern {
            fn name(&self) -> &str {
                "random"
            }
            fn p(&self) -> usize {
                self.p
            }
            fn stages(&self) -> usize {
                self.stages.len()
            }
            fn stage(&self, k: usize) -> &hpm::model::matrix::IMat {
                &self.stages[k]
            }
        }

        // SplitMix64: no extra dev-dependency needed for edge sampling.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        // p = 1 admits no edges at all (self-loops are rejected).
        let n_stages = if p == 1 { 0 } else { n_stages };
        let stages: Vec<IMat> = (0..n_stages)
            .map(|_| {
                let mut m = IMat::empty(p);
                let edges = 1 + (next() as usize) % (2 * p);
                for _ in 0..edges {
                    let i = (next() as usize) % p;
                    let j = (next() as usize) % p;
                    if i != j {
                        m.insert(i, j);
                    }
                }
                m
            })
            .collect();
        let pat = RandomPattern { p, stages };
        let plan = CompiledPattern::compile(&pat);

        prop_assert_eq!(plan.p(), p);
        prop_assert_eq!(plan.stages(), pat.stages());
        prop_assert_eq!(plan.total_signals(), pat.total_signals());
        for s in 0..pat.stages() {
            let dense = pat.stage(s);
            let flat = plan.stage(s);
            prop_assert_eq!(flat.edge_count(), dense.edge_count());
            for r in 0..p {
                prop_assert_eq!(flat.dsts(r), &dense.dsts(r).collect::<Vec<_>>()[..]);
                prop_assert_eq!(flat.srcs(r), &dense.srcs(r).collect::<Vec<_>>()[..]);
                prop_assert_eq!(flat.out_degree(r), dense.out_degree(r));
                prop_assert_eq!(flat.in_degree(r), dense.in_degree(r));
            }
        }
        for i in 0..p {
            for before in 0..=pat.stages() + 1 {
                prop_assert_eq!(
                    plan.last_send_stage(i, before),
                    pat.last_send_stage(i, before),
                    "rank {} before {}", i, before
                );
            }
            // Reference definition of the §5.6.5 posted test.
            for s in 0..pat.stages() {
                let reference = s > 0
                    && match pat.last_send_stage(i, s) {
                        None => true,
                        Some(k) => k + 1 < s,
                    };
                prop_assert_eq!(plan.is_posted(i, s), reference, "rank {} stage {}", i, s);
            }
        }
    }

    /// Barrier prediction is monotone in latency: scaling all pairwise
    /// latencies up cannot make the barrier faster.
    #[test]
    fn prediction_monotone_in_latency(p in 2usize..24, scale in 1.0f64..10.0) {
        let base = CommCosts::uniform(p, 1e-7, 5e-7, 2e-6);
        let scaled = CommCosts::new(
            base.o.clone(),
            base.l.scale(scale),
            base.beta.clone(),
        );
        let pat = dissemination(p);
        let t0 = predict_barrier(&pat, &base, &PayloadSchedule::none()).total;
        let t1 = predict_barrier(&pat, &scaled, &PayloadSchedule::none()).total;
        prop_assert!(t1 >= t0 * 0.999);
    }

    /// Payload never makes a prediction cheaper.
    #[test]
    fn payload_is_never_free(p in 2usize..24, bytes in 0u64..100_000) {
        let mut costs = CommCosts::uniform(p, 1e-7, 5e-7, 2e-6);
        costs.beta = DMat::from_fn(p, p, |i, j| if i == j { 0.0 } else { 1e-9 });
        let pat = dissemination(p);
        let plain = predict_barrier(&pat, &costs, &PayloadSchedule::none()).total;
        let loaded = predict_barrier(
            &pat,
            &costs,
            &PayloadSchedule::uniform(pat.stages(), bytes),
        )
        .total;
        prop_assert!(loaded >= plain);
    }

    /// (R ⊗ C)·s is linear in the requirements.
    #[test]
    fn superstep_times_linear_in_requirements(
        n in 1usize..2000,
        k in 1.0f64..8.0,
    ) {
        let r = DMat::from_fn(3, 2, |i, j| (n * (i + j + 1)) as f64);
        let c = DMat::from_fn(3, 2, |i, j| 1e-9 * (1 + i * 2 + j) as f64);
        let t1 = superstep_times(&r, &c);
        let t2 = superstep_times(&r.scale(k), &c);
        for (a, b) in t1.iter().zip(t2.iter()) {
            prop_assert!((b - a * k).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    /// Imbalance is scale-invariant and non-negative.
    #[test]
    fn imbalance_properties(t in proptest::collection::vec(0.1f64..100.0, 1..16), k in 0.5f64..10.0) {
        let i1 = imbalance(&t);
        let scaled: Vec<f64> = t.iter().map(|x| x * k).collect();
        let i2 = imbalance(&scaled);
        prop_assert!(i1 >= -1e-12);
        prop_assert!((i1 - i2).abs() < 1e-9);
    }

    /// Eq. 1.4 is bounded by the sequential and perfect-overlap extremes.
    #[test]
    fn superstep_total_between_extremes(
        comp in 0.0f64..10.0,
        comm in 0.0f64..10.0,
        fc in 0.0f64..1.0,
        fm in 0.0f64..1.0,
        sync in 0.0f64..1.0,
    ) {
        let m = SuperstepModel::new(
            vec![comp],
            vec![comp * fc],
            vec![comm],
            vec![comm * fm],
            sync,
        );
        let sequential = comp + comm + sync;
        let perfect = comp.max(comm) + sync;
        prop_assert!(m.total() <= sequential + 1e-12);
        prop_assert!(m.total() >= perfect - 1e-12);
    }

    /// Median and quantiles are order statistics: bounded by min/max and
    /// invariant under permutation.
    #[test]
    fn quantile_bounds(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50), q in 0.0f64..1.0) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&xs, q);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        let m1 = median(&xs);
        xs.reverse();
        prop_assert_eq!(m1, median(&xs));
    }

    /// Regression recovers exact lines regardless of slope/intercept.
    #[test]
    fn regression_recovers_lines(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let pts: Vec<(f64, f64)> = (0..12).map(|i| (i as f64, a + b * i as f64)).collect();
        let f = LinearFit::fit(&pts);
        prop_assert!((f.intercept - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((f.slope - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// Decomposition blocks always tile the grid exactly.
    #[test]
    fn decomposition_tiles(n in 16usize..512, p in 1usize..32) {
        prop_assume!(n / p >= 4);
        let d = Decomposition::new(n, p);
        let total: usize = (0..d.p()).map(|r| d.block(r).cells()).sum();
        prop_assert_eq!(total, n * n);
        // Region split conserves cells.
        for r in 0..d.p() {
            prop_assert_eq!(d.regions(r).total(), d.block(r).cells());
        }
    }

    /// Hybrid barriers over arbitrary partitions synchronize.
    #[test]
    fn hybrid_barriers_synchronize(p in 4usize..32, groups in 2usize..5) {
        prop_assume!(groups < p);
        let mut gs: Vec<Vec<usize>> = vec![Vec::new(); groups];
        for r in 0..p {
            gs[r % groups].push(r);
        }
        let shapes = vec![GatherShape::Tree(2); groups];
        let inter = dissemination(groups);
        let b = hybrid_barrier(p, &gs, &shapes, Some(&inter));
        prop_assert!(verify_synchronizes(&b).synchronizes());
    }

    /// Every collective pattern in the catalog passes its knowledge /
    /// rooted-knowledge check for every p in 1..=16, any root, any
    /// payload size.
    #[test]
    fn collective_patterns_satisfy_knowledge_goals(
        p in 1usize..17,
        root_pick in 0usize..16,
        bytes in 1u64..1_000_000,
    ) {
        let root = root_pick % p;
        for c in catalog(p, root, bytes) {
            use hpm::model::knowledge::verify_synchronizes as verify;
            let trace = verify(&c);
            prop_assert!(
                trace.satisfies(c.goal()),
                "{} p={} root={} violates {:?}",
                c.name(), p, root, c.goal()
            );
        }
    }

    /// Collective predictions are finite, non-negative, and never become
    /// cheaper when payload grows.
    #[test]
    fn collective_prediction_monotone_in_payload(
        p in 1usize..17,
        bytes in 1u64..100_000,
        k in 2u64..10,
    ) {
        let mut costs = hpm::model::predictor::CommCosts::uniform(p, 1e-7, 5e-7, 2e-6);
        costs.beta = DMat::from_fn(p, p, |i, j| if i == j { 0.0 } else { 1e-9 });
        for (small, big) in catalog(p, 0, bytes).into_iter().zip(catalog(p, 0, bytes * k)) {
            let a = predict_collective(&small, &costs).total;
            let b = predict_collective(&big, &costs).total;
            prop_assert!(a.is_finite() && a >= 0.0, "{}: {a}", small.name());
            prop_assert!(b >= a, "{}: {b} < {a}", small.name());
        }
    }

    /// Reduce over the runtime produces the exact elementwise sum at the
    /// root, for arbitrary process counts, roots and vector lengths.
    #[test]
    fn runtime_reduce_is_numerically_exact(
        p in 1usize..11,
        root_pick in 0usize..16,
        n in 1usize..40,
    ) {
        let root = root_pick % p;
        let cfg = BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            99,
        );
        let out = run_reduce(&cfg, root, n);
        let want: Vec<f64> = (0..n)
            .map(|kk| (0..p).map(|r| seed_vector(r, n)[kk]).sum())
            .collect();
        prop_assert_eq!(&out.values[root], &want);
    }

    /// Scan over the runtime produces exact inclusive prefixes on every
    /// rank.
    #[test]
    fn runtime_scan_is_numerically_exact(p in 1usize..11, n in 1usize..40) {
        let cfg = BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            7,
        );
        let out = run_scan(&cfg, n);
        for (pid, v) in out.values.iter().enumerate() {
            let want: Vec<f64> = (0..n)
                .map(|kk| (0..=pid).map(|r| seed_vector(r, n)[kk]).sum())
                .collect();
            prop_assert_eq!(v, &want, "pid {}", pid);
        }
    }

    /// The hierarchical link map (two O(ranks) arrays and a comparison
    /// chain) equals the dense per-pair oracle — `shape.link_class` over
    /// the ranks' cores — for random cluster shapes, every placement
    /// policy and process counts up to 128; and the closed-form
    /// remote-pair count `p² − Σ_n cnt_n²` equals the direct O(p²) count.
    #[test]
    fn link_map_matches_dense_oracle(
        nodes in 1usize..10,
        spn in 1usize..4,
        cps in 1usize..6,
        p_pick in 0usize..128,
    ) {
        use hpm::topology::{ClusterShape, LinkClass};
        let shape = ClusterShape::new(nodes, spn, cps);
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::Block,
            PlacementPolicy::Spread,
        ] {
            let cap = if policy == PlacementPolicy::Spread {
                nodes
            } else {
                shape.total_cores()
            };
            let p = 1 + p_pick % cap.min(128);
            let pl = Placement::new(shape, policy, p);
            let mut remote = 0usize;
            for a in 0..p {
                prop_assert_eq!(pl.node_of(a), pl.core_of(a).node);
                for b in 0..p {
                    let direct = shape.link_class(pl.core_of(a), pl.core_of(b));
                    prop_assert_eq!(
                        pl.link(a, b), direct,
                        "{:?} p={} pair ({},{})", policy, p, a, b
                    );
                    if direct == LinkClass::Remote {
                        remote += 1;
                    }
                }
            }
            prop_assert_eq!(pl.remote_pair_count(), remote, "{:?} p={}", policy, p);
        }
    }

    /// SSS clustering partitions the ranks exactly once.
    #[test]
    fn sss_is_a_partition(p in 2usize..40, nodes in 1usize..6) {
        let l = DMat::from_fn(p, p, |i, j| {
            if i == j { 0.0 }
            else if i % nodes == j % nodes { 1e-6 }
            else { 1e-4 }
        });
        let c = sss_clusters(&l);
        let mut seen = vec![false; p];
        for g in &c.groups {
            for &r in g {
                prop_assert!(!seen[r], "rank {} twice", r);
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
